#include "serve/engine_router.h"

#include <algorithm>
#include <latch>
#include <limits>
#include <unordered_map>
#include <utility>

#include "graph/graph_fingerprint.h"
#include "linalg/vec_ops.h"

namespace d2pr {

namespace {

ScoreCacheOptions ToScoreCacheOptions(const RouterOptions& options) {
  ScoreCacheOptions cache;
  cache.capacity = options.score_cache_capacity;
  cache.ttl = options.score_cache_ttl;
  cache.now = options.clock;
  return cache;
}

}  // namespace

EngineRouter::EngineRouter(std::shared_ptr<const CsrGraph> graph,
                           const RouterOptions& options)
    : graph_(std::move(graph)),
      options_(options),
      shard_map_(options.shard_map ? options.shard_map
                                   : std::make_shared<ModuloShardMap>()),
      score_cache_(ToScoreCacheOptions(options)),
      pool_(options.worker_threads > 0
                ? options.worker_threads
                : std::max<size_t>(size_t{1}, options.num_shards)) {
  const size_t num_shards = std::max<size_t>(size_t{1}, options.num_shards);
  // Shards sharing a persistent store all need the same graph
  // fingerprint; hash the edge arrays once here instead of once per
  // shard engine.
  EngineOptions shard_options = options.engine_options;
  if (!shard_options.cache_dir.empty() &&
      shard_options.persist_mode != PersistMode::kOff &&
      shard_options.precomputed_graph_fingerprint == 0) {
    shard_options.precomputed_graph_fingerprint = GraphFingerprint(*graph_);
  }
  shards_.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    shards_.push_back(std::make_unique<D2prEngine>(graph_, shard_options));
  }
  for (NodeId node = 0; node < graph_->num_nodes(); ++node) {
    if (graph_->OutDegree(node) == 0) dangling_nodes_.push_back(node);
  }
}

EngineRouter::EngineRouter(CsrGraph graph, const RouterOptions& options)
    : EngineRouter(std::make_shared<const CsrGraph>(std::move(graph)),
                   options) {}

EngineRouter EngineRouter::Borrowing(const CsrGraph& graph,
                                     const RouterOptions& options) {
  return EngineRouter(
      std::shared_ptr<const CsrGraph>(&graph, [](const CsrGraph*) {}),
      options);
}

size_t EngineRouter::ShardForTag(const std::string& tag) const {
  return std::hash<std::string>{}(tag) % shards_.size();
}

size_t EngineRouter::OwnerShardOf(NodeId node) const {
  return shard_map_->OwnerOf(node, shards_.size());
}

bool EngineRouter::AdvanceReferenceLruLocked(const TransitionKey& key) {
  auto it = std::find(reference_lru_.begin(), reference_lru_.end(), key);
  if (it != reference_lru_.end()) {
    reference_lru_.splice(reference_lru_.begin(), reference_lru_, it);
    return true;
  }
  const size_t capacity = options_.engine_options.transition_cache_capacity;
  if (capacity > 0) {
    reference_lru_.push_front(key);
    while (reference_lru_.size() > capacity) reference_lru_.pop_back();
  }
  return false;
}

std::vector<EngineRouter::Unit> EngineRouter::RouteLocked(
    const RankRequest& request, size_t request_index,
    std::vector<size_t>& planned_load) {
  std::vector<Unit> units;
  // Warm-tag affinity first: a trajectory must see its whole request
  // subsequence on one engine regardless of policy, or warm state (and
  // with it the bit-exact scores) would scatter.
  if (!request.warm_start_tag.empty()) {
    Unit unit;
    unit.request_index = request_index;
    unit.shard = ShardForTag(request.warm_start_tag);
    unit.request = request;
    ++planned_load[unit.shard];
    units.push_back(std::move(unit));
    return units;
  }

  if (options_.policy == RoutingPolicy::kPartitionedTeleport &&
      !request.seeds.empty() &&
      request.dangling != DanglingPolicy::kRenormalize) {
    // Seed ownership split. kRenormalize is excluded: its fixed point is
    // not linear in the teleport vector, so those requests route whole.
    std::vector<std::vector<NodeId>> owned(shards_.size());
    for (NodeId seed : request.seeds) {
      owned[shard_map_->OwnerOf(seed, shards_.size())].push_back(seed);
    }
    size_t slot = 0;
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      if (owned[shard].empty()) continue;
      Unit unit;
      unit.request_index = request_index;
      unit.shard = shard;
      unit.slot = slot++;
      unit.weight = static_cast<double>(owned[shard].size()) /
                    static_cast<double>(request.seeds.size());
      unit.request = request;
      unit.request.seeds = std::move(owned[shard]);
      ++planned_load[shard];
      units.push_back(std::move(unit));
    }
    if (!units.empty()) return units;
    // Unreachable (non-empty seeds always have owners); fall through to
    // the strategy path for safety.
  }

  Unit unit;
  unit.request_index = request_index;
  unit.request = request;
  switch (options_.strategy) {
    case ReplicaStrategy::kRoundRobin:
      unit.shard = round_robin_next_++ % shards_.size();
      break;
    case ReplicaStrategy::kLeastLoaded: {
      size_t best = 0;
      int64_t best_load = std::numeric_limits<int64_t>::max();
      for (size_t shard = 0; shard < shards_.size(); ++shard) {
        const int64_t load =
            shards_[shard]->stats().requests_inflight.load(
                std::memory_order_relaxed) +
            static_cast<int64_t>(planned_load[shard]);
        if (load < best_load) {
          best_load = load;
          best = shard;
        }
      }
      unit.shard = best;
      break;
    }
  }
  ++planned_load[unit.shard];
  units.push_back(std::move(unit));
  return units;
}

RankResponse EngineRouter::MergeParts(const RankRequest& request,
                                      std::vector<Part> parts) const {
  RankResponse merged;
  merged.method = request.method;
  merged.converged = true;
  merged.scores.assign(static_cast<size_t>(graph_->num_nodes()), 0.0);
  for (Part& part : parts) {
    double scale = part.weight;
    if (request.dangling == DanglingPolicy::kTeleport &&
        !dangling_nodes_.empty()) {
      // Un-normalize: x_s = ((1-a) + a*m_s) * (I - aP)^-1 v_s, where m_s
      // is the dangling mass of x_s itself. Dividing by that factor
      // recovers the linear-in-teleport quantity the weighted sum of
      // sub-teleports actually combines.
      double dangling_mass = 0.0;
      for (NodeId node : dangling_nodes_) {
        dangling_mass += part.response.scores[static_cast<size_t>(node)];
      }
      scale /= (1.0 - request.alpha) + request.alpha * dangling_mass;
    }
    for (size_t i = 0; i < merged.scores.size(); ++i) {
      merged.scores[i] += scale * part.response.scores[i];
    }
    merged.iterations = std::max(merged.iterations, part.response.iterations);
    merged.pushes += part.response.pushes;
    merged.converged = merged.converged && part.response.converged;
    merged.residual = std::max(merged.residual, part.response.residual);
    // "As executed" store diagnostics survive the merge: any sub-solve
    // whose transition was mapped from the persistent store reports it.
    merged.transition_store_hit =
        merged.transition_store_hit || part.response.transition_store_hit;
  }
  NormalizeL1(merged.scores);
  return merged;
}

Result<RankResponse> EngineRouter::ExecuteUnits(const RankRequest& request,
                                                std::vector<Unit> units) {
  std::vector<Part> parts;
  parts.reserve(units.size());
  for (Unit& unit : units) {
    Result<RankResponse> response = shards_[unit.shard]->Rank(unit.request);
    if (!response.ok()) return response.status();
    parts.push_back(Part{unit.weight, std::move(response).value()});
  }
  if (parts.size() == 1 && parts[0].weight == 1.0) {
    return std::move(parts[0].response);
  }
  return MergeParts(request, std::move(parts));
}

Result<RankResponse> EngineRouter::Rank(const RankRequest& request) {
  const bool cacheable =
      score_cache_.capacity() > 0 && request.warm_start_tag.empty();
  std::string key;
  std::optional<RankResponse> memo;
  if (cacheable) {
    key = ScoreCache::KeyFor(request);
    memo = score_cache_.Lookup(key);
  }

  // The virtual reference LRU advances only for requests that succeed —
  // memo hits included — because the sequential engine validates before
  // touching its cache: a failing request must not leave a key (or, for
  // NaN parameters, an unmatchable junk key) in the reference trace.
  auto advance_reference = [this, &request] {
    std::lock_guard<std::mutex> lock(route_mu_);
    return AdvanceReferenceLruLocked(shards_[0]->ResolveKey(request));
  };

  if (memo) {
    memo->transition_cache_hit = advance_reference();
    return std::move(*memo);
  }

  std::vector<Unit> units;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    std::vector<size_t> planned_load(shards_.size(), 0);
    units = RouteLocked(request, 0, planned_load);
  }

  Result<RankResponse> response = ExecuteUnits(request, std::move(units));
  if (!response.ok()) return response;
  if (cacheable) score_cache_.Insert(key, *response);
  response->transition_cache_hit = advance_reference();
  return response;
}

Result<std::vector<RankResponse>> EngineRouter::RankBatch(
    std::span<const RankRequest> requests) {
  std::vector<RankResponse> responses(requests.size());
  if (requests.empty()) return responses;

  // Memo probes run before planning so the O(num_nodes) response copies
  // happen outside route_mu_. Duplicate memoizable requests within one
  // batch solve once: only the first occurrence of a cache key is probed
  // and routed, the rest alias to its response afterwards (the batched
  // analogue of ServingRuntime's single-flight).
  constexpr size_t kNoAlias = std::numeric_limits<size_t>::max();
  const bool cache_on = score_cache_.capacity() > 0;
  std::vector<char> memoized(requests.size(), 0);
  std::vector<size_t> alias_of(requests.size(), kNoAlias);
  std::vector<std::string> keys(requests.size());
  if (cache_on) {
    std::unordered_map<std::string, size_t> first_key_index;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].warm_start_tag.empty()) continue;
      keys[i] = ScoreCache::KeyFor(requests[i]);
      auto [it, inserted] = first_key_index.try_emplace(keys[i], i);
      if (!inserted) {
        alias_of[i] = it->second;
        continue;
      }
      if (std::optional<RankResponse> memo = score_cache_.Lookup(keys[i])) {
        responses[i] = std::move(*memo);
        memoized[i] = 1;
      }
    }
  }

  // Plan the whole batch atomically: shard assignment happens in
  // submission order.
  std::vector<std::vector<Part>> parts(requests.size());
  std::vector<std::vector<Unit>> chains(shards_.size());
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    std::vector<size_t> planned_load(shards_.size(), 0);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (memoized[i] || alias_of[i] != kNoAlias) continue;
      std::vector<Unit> units = RouteLocked(requests[i], i, planned_load);
      parts[i].resize(units.size());
      for (Unit& unit : units) {
        parts[i][unit.slot].weight = unit.weight;
        chains[unit.shard].push_back(std::move(unit));
      }
    }
  }

  std::mutex error_mu;
  size_t first_error_index = requests.size();
  Status first_error = Status::OK();

  ptrdiff_t active_chains = 0;
  for (const std::vector<Unit>& chain : chains) {
    if (!chain.empty()) ++active_chains;
  }
  std::latch done(active_chains);
  for (std::vector<Unit>& chain : chains) {
    if (chain.empty()) continue;
    pool_.Submit([this, &parts, &error_mu, &first_error_index, &first_error,
                  &done, chain = std::move(chain)] {
      for (const Unit& unit : chain) {
        Result<RankResponse> response =
            shards_[unit.shard]->Rank(unit.request);
        if (!response.ok()) {
          // Mirror the sequential fail-fast error: of all failing
          // requests, the lowest index wins; the rest of this shard's
          // chain would never have run, so stop it.
          std::lock_guard<std::mutex> lock(error_mu);
          if (unit.request_index < first_error_index) {
            first_error_index = unit.request_index;
            first_error = response.status();
          }
          break;
        }
        // Distinct (request_index, slot) per unit: writes never collide.
        parts[unit.request_index][unit.slot].response =
            std::move(response).value();
      }
      done.count_down();
    });
  }
  done.wait();

  // The reference LRU advances for exactly the successful prefix — the
  // requests whose transitions the sequential single-engine reference
  // would have fetched before failing fast (a failing request validates
  // before touching the cache, so it never advances it).
  const size_t replayed =
      first_error_index < requests.size() ? first_error_index
                                          : requests.size();
  std::vector<bool> expected_hits(requests.size(), false);
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    for (size_t i = 0; i < replayed; ++i) {
      expected_hits[i] =
          AdvanceReferenceLruLocked(shards_[0]->ResolveKey(requests[i]));
    }
  }
  if (first_error_index < requests.size()) return first_error;

  for (size_t i = 0; i < requests.size(); ++i) {
    if (memoized[i] || alias_of[i] != kNoAlias) continue;
    if (parts[i].size() == 1 && parts[i][0].weight == 1.0) {
      responses[i] = std::move(parts[i][0].response);
    } else {
      responses[i] = MergeParts(requests[i], std::move(parts[i]));
    }
    if (cache_on && requests[i].warm_start_tag.empty()) {
      score_cache_.Insert(keys[i], responses[i]);
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (alias_of[i] != kNoAlias) responses[i] = responses[alias_of[i]];
    responses[i].transition_cache_hit = expected_hits[i];
  }
  return responses;
}

std::future<Result<RankResponse>> EngineRouter::RankAsync(
    RankRequest request) {
  auto promise = std::make_shared<std::promise<Result<RankResponse>>>();
  std::future<Result<RankResponse>> future = promise->get_future();
  // Rank() executes entirely inline (no nested pool submits), so async
  // tasks can never deadlock the fixed-size pool.
  pool_.Submit([this, promise, request = std::move(request)] {
    promise->set_value(Rank(request));
  });
  return future;
}

}  // namespace d2pr
