#include "graph/graph_builder.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/string_util.h"

namespace d2pr {

namespace {

/// Successful whole-graph freezes (see BuildCount()).
std::atomic<uint64_t> g_build_count{0};

}  // namespace

GraphBuilder::GraphBuilder(NodeId num_nodes, GraphKind kind, bool weighted)
    : num_nodes_(num_nodes), kind_(kind), weighted_(weighted) {
  D2PR_CHECK_GE(num_nodes, 0);
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
    return Status::InvalidArgument(
        StrCat("edge (", u, ", ", v, ") outside node range [0, ",
               num_nodes_, ")"));
  }
  if (!weighted_ && weight != 1.0) {
    return Status::InvalidArgument(
        StrCat("weight ", weight, " on unweighted graph (expect 1.0)"));
  }
  if (weighted_ && !(weight > 0.0)) {
    return Status::InvalidArgument(
        StrCat("non-positive weight ", weight, " on edge (", u, ", ", v,
               "); transition probabilities require positive weights"));
  }
  srcs_.push_back(u);
  dsts_.push_back(v);
  weights_.push_back(weight);
  if (kind_ == GraphKind::kUndirected && u != v) {
    srcs_.push_back(v);
    dsts_.push_back(u);
    weights_.push_back(weight);
  }
  return Status::OK();
}

Result<CsrGraph> GraphBuilder::Build(DuplicatePolicy policy) {
  const size_t arc_count = srcs_.size();
  // Sort arc indices by (src, dst) so duplicates become adjacent and CSR
  // rows come out sorted.
  std::vector<size_t> order(arc_count);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (srcs_[a] != srcs_[b]) return srcs_[a] < srcs_[b];
    return dsts_[a] < dsts_[b];
  });

  std::vector<EdgeIndex> offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<NodeId> targets;
  std::vector<double> weights;
  targets.reserve(arc_count);
  if (weighted_) weights.reserve(arc_count);

  for (size_t i = 0; i < arc_count;) {
    const size_t idx = order[i];
    const NodeId src = srcs_[idx];
    const NodeId dst = dsts_[idx];
    double weight = weights_[idx];
    size_t j = i + 1;
    while (j < arc_count && srcs_[order[j]] == src &&
           dsts_[order[j]] == dst) {
      switch (policy) {
        case DuplicatePolicy::kSum:
          weight += weights_[order[j]];
          break;
        case DuplicatePolicy::kKeepFirst:
          break;
        case DuplicatePolicy::kError:
          return Status::InvalidArgument(
              StrCat("duplicate edge (", src, ", ", dst, ")"));
      }
      ++j;
    }
    targets.push_back(dst);
    if (weighted_) weights.push_back(weight);
    ++offsets[static_cast<size_t>(src) + 1];
    i = j;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    offsets[static_cast<size_t>(v) + 1] += offsets[v];
  }

  srcs_.clear();
  dsts_.clear();
  weights_.clear();
  g_build_count.fetch_add(1, std::memory_order_relaxed);
  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights),
                  kind_);
}

uint64_t GraphBuilder::BuildCount() {
  return g_build_count.load(std::memory_order_relaxed);
}

}  // namespace d2pr
