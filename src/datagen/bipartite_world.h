// Synthetic bipartite affiliation worlds (the paper's data substitute).
//
// The paper's eight data graphs are projections of bipartite affiliations
// (actor ∈ movie, author ∈ article, listener → artist, commenter → product)
// plus external per-node significance (ratings, citations, play counts,
// trust counts). Those datasets are not redistributable here, so this
// module builds worlds with the same generative skeleton the paper's §1.2.1
// analysis assumes:
//
//   * every member and venue has a latent quality in (0, 1);
//   * members join venues assortatively (quality matching);
//   * joining venue r costs  cost_base + cost_quality_slope · quality(r)
//     out of a member's bounded budget.
//
// With cost_quality_slope > 0, high-quality members afford only a few
// (high-quality) venues while low-quality members accumulate many cheap
// ones — exactly the paper's "B-movie actor" mechanism that makes node
// degree *negatively* related to significance (application Group A). With
// slope 0 the coupling disappears and the significance models (see
// significance.h) decide the regime.

#ifndef D2PR_DATAGEN_BIPARTITE_WORLD_H_
#define D2PR_DATAGEN_BIPARTITE_WORLD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/types.h"

namespace d2pr {

/// \brief Generator parameters for one affiliation world.
struct BipartiteWorldConfig {
  NodeId num_members = 1000;
  NodeId num_venues = 500;

  /// Venue sizes (cast size / author count / audience) are Zipf-distributed
  /// over [venue_size_min, venue_size_max] with exponent venue_size_zipf_s;
  /// larger s concentrates mass near the minimum.
  int32_t venue_size_min = 2;
  int32_t venue_size_max = 30;
  double venue_size_zipf_s = 1.2;

  /// Latent qualities ~ Beta(quality_alpha, quality_beta), both sides.
  double quality_alpha = 2.0;
  double quality_beta = 2.0;

  /// Assortativity: a member i is accepted into venue r with probability
  /// proportional to exp(-affinity · |quality(i) - quality(r)|). 0 = none.
  double affinity = 4.0;

  /// Participation cost: cost_base + cost_quality_slope · quality(r).
  /// Must keep cost positive for all venues.
  double cost_base = 1.0;
  double cost_quality_slope = 0.0;

  /// Member budgets ~ Lognormal with the given mean and log-space sigma.
  /// Small sigma = homogeneous budgets (degrees driven by cost alone);
  /// large sigma = heavy-tailed member degrees.
  double budget_mean = 12.0;
  double budget_sigma = 0.3;

  uint64_t seed = 42;
};

/// \brief A generated affiliation world.
struct BipartiteWorld {
  BipartiteWorldConfig config;
  std::vector<double> member_quality;  ///< size num_members, in (0, 1).
  std::vector<double> venue_quality;   ///< size num_venues, in (0, 1).
  /// venue_members[r] = sorted distinct member ids affiliated with venue r.
  std::vector<std::vector<NodeId>> venue_members;
  /// member_venues[i] = sorted venue ids member i joined (derived).
  std::vector<std::vector<NodeId>> member_venues;
  std::vector<double> member_budget;  ///< Initial budgets (diagnostics).
  std::vector<double> member_spent;   ///< Budget actually consumed.

  int64_t TotalMemberships() const {
    int64_t total = 0;
    for (const auto& venue : venue_members) {
      total += static_cast<int64_t>(venue.size());
    }
    return total;
  }
};

/// \brief Generates a world. Deterministic in config.seed.
///
/// Returns InvalidArgument for non-positive sizes, invalid quality/Zipf
/// parameters, or a cost model that can exceed every member's budget from
/// the start (which would produce an empty world).
Result<BipartiteWorld> GenerateBipartiteWorld(
    const BipartiteWorldConfig& config);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_BIPARTITE_WORLD_H_
