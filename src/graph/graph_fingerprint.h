// GraphFingerprint: a 64-bit identity hash of a graph's exact CSR
// representation.
//
// The persistent transition store keys its files by this fingerprint so a
// matrix spilled for one graph can never be replayed against another: a
// TransitionMatrix is only meaningful relative to the arc layout it was
// built from, and two graphs that differ in a single arc, weight, or
// direction produce different fingerprints (modulo 64-bit collisions).

#ifndef D2PR_GRAPH_GRAPH_FINGERPRINT_H_
#define D2PR_GRAPH_GRAPH_FINGERPRINT_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Order-sensitive FNV-1a hash over (kind, weightedness,
/// num_nodes, num_arcs, offsets, targets, weights).
///
/// Graphs comparing equal under CsrGraph::operator== share a fingerprint;
/// the converse holds up to hash collisions, which the store treats as
/// good enough — a collision only ever substitutes a matrix of another
/// graph with identical dimensions, and the store additionally matches
/// node and arc counts before trusting a file.
uint64_t GraphFingerprint(const CsrGraph& graph);

}  // namespace d2pr

#endif  // D2PR_GRAPH_GRAPH_FINGERPRINT_H_
