// Wire protocol of the d2pr network front door: length-prefixed binary
// frames carrying the RankRequest / RankResponse vocabulary over a byte
// stream.
//
// Every frame is
//
//   [0..4)   payload_len  u32   bytes of payload following the header
//   [4..8)   magic        u32   kWireMagic ("D2PR" little-endian)
//   [8..10)  version      u16   kWireVersion
//   [10..12) type         u16   FrameType
//   [12..20) request_id   u64   caller-chosen correlation id
//   [20..)   payload      payload_len bytes, layout per FrameType
//
// all little-endian (the same convention as the persistent store formats
// in common/binary_io.h). The fixed 20-byte header is readable before any
// payload byte, so a receiver can validate magic / version / type /
// bounded length and drop a garbage connection without buffering an
// attacker-chosen amount of data: payload_len above kMaxPayloadBytes is a
// protocol error, not an allocation.
//
// Two error channels are deliberately distinct:
//
//   * Framing errors (bad magic, unknown version or type, oversize
//     length, truncation) mean the byte stream itself is broken — the
//     peer is not speaking this protocol — and the connection is closed.
//   * Payload decode errors (a well-formed frame whose body does not
//     parse) and application errors (a solve that fails) travel BACK on
//     the stream as kStatus frames carrying the d2pr Status code and
//     message, echoing the request id; the connection stays usable.
//
// kUnavailable is its own frame type, not just a status payload, so an
// overload shed is distinguishable at the framing layer: a load balancer
// can count sheds without decoding status bodies.
//
// Codecs are pure functions over byte vectors — no sockets here — so the
// fuzz suite (tests/net_wire_test.cc) can truncate and corrupt at every
// boundary without a server in the loop.
//
// Top-k extension (same kWireVersion, by construction backward
// compatible): a RankRequest payload may carry one trailing u32 top_k,
// appended only when nonzero — so exact-serving requests stay
// byte-identical to the pre-top-k format and old frames decode with
// top_k = 0. A RankResponse sets flag bit 5 to gate a trailing truncated
// section (u64 entry count; per entry u32 node + f64 score + u8
// certified; then f64 uncertainty_gap); without the bit the layout is
// unchanged, so pre-top-k responses decode identically.

#ifndef D2PR_NET_WIRE_H_
#define D2PR_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "api/rank_request.h"
#include "common/result.h"

namespace d2pr {

/// "D2PR" read as a little-endian u32.
inline constexpr uint32_t kWireMagic = 0x52503244u;
inline constexpr uint16_t kWireVersion = 1;
/// Bytes before the payload: len + magic + version + type + request_id.
inline constexpr size_t kFrameHeaderBytes = 20;
/// Upper bound a receiver enforces before allocating a payload buffer.
/// 64 MiB holds a ~8M-score response; anything larger is a corrupt or
/// hostile length field.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// \brief What a frame's payload contains.
///
/// Types 7..12 are the v2 distributed-block-solve vocabulary
/// (net/shard_wire.h): coordinator-to-shard handshake, solve control, and
/// per-sweep boundary exchange. They ride the same kWireVersion — adding
/// frame types is backward compatible because every v1 frame's byte
/// layout is untouched; an old peer receiving a v2 type rejects it as an
/// unknown type, exactly as it rejects garbage today.
enum class FrameType : uint16_t {
  kRankRequest = 1,   ///< client -> server: WireRankRequest
  kRankResponse = 2,  ///< server -> client: RankResponse
  kStatus = 3,        ///< server -> client: Status (code + message)
  kUnavailable = 4,   ///< server -> client: Status; load was shed
  kInfoRequest = 5,   ///< client -> server: empty payload
  kInfoResponse = 6,  ///< server -> client: ServerInfo
  kShardHandshake = 7,     ///< coordinator -> shard: ShardHandshake
  kShardHandshakeAck = 8,  ///< shard -> coordinator: ShardHandshakeAck
  kSolveBegin = 9,         ///< coordinator -> shard: ShardSolveBegin
  kSweepRequest = 10,      ///< coordinator -> shard: ShardSweepRequest
  kSweepResponse = 11,     ///< shard -> coordinator: ShardSweepResponse
  kSolveEnd = 12,          ///< coordinator -> shard: ShardSolveEnd
};

/// \brief Decoded fixed header of one frame (magic/version validated and
/// dropped).
struct FrameHeader {
  uint32_t payload_len = 0;
  FrameType type = FrameType::kStatus;
  uint64_t request_id = 0;
};

/// \brief One RankRequest plus its transport envelope.
struct WireRankRequest {
  RankRequest request;
  /// Relative deadline in milliseconds; 0 = no deadline. The server
  /// stamps an absolute deadline at admission and enforces it before the
  /// solve and again at response delivery (see net/server.h).
  uint64_t deadline_ms = 0;
};

/// \brief What a server tells clients about itself (kInfoResponse).
struct ServerInfo {
  uint64_t num_nodes = 0;
  uint64_t num_arcs = 0;
  uint64_t num_shards = 1;
  uint64_t num_threads = 1;
};

/// \brief Assembles a complete frame (header + payload) ready to write.
/// D2PR_CHECKs that `payload` fits kMaxPayloadBytes — encoders below
/// cannot produce an oversize payload from valid inputs.
std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t request_id,
                                 std::span<const uint8_t> payload);

/// \brief Validates and decodes the fixed header at `bytes` (which must
/// hold at least kFrameHeaderBytes). InvalidArgument on short input, bad
/// magic, version skew, unknown type, or payload_len > kMaxPayloadBytes —
/// all of which mean the stream is not speaking this protocol.
Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> bytes);

// --- payload codecs (payload bytes only, no frame header) ---

std::vector<uint8_t> EncodeRankRequest(const WireRankRequest& request);
Result<WireRankRequest> DecodeRankRequest(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeRankResponse(const RankResponse& response);
Result<RankResponse> DecodeRankResponse(std::span<const uint8_t> payload);

/// Status payloads carry code + message; OK is legal (unused in
/// practice — successful solves travel as kRankResponse). The decode
/// return value reports payload malformation; the decoded status itself
/// lands in `*decoded` (out-parameter because Result<Status> would make
/// the carried error and the carried value the same type).
std::vector<uint8_t> EncodeStatusPayload(const Status& status);
Status DecodeStatusPayload(std::span<const uint8_t> payload, Status* decoded);

std::vector<uint8_t> EncodeServerInfo(const ServerInfo& info);
Result<ServerInfo> DecodeServerInfo(std::span<const uint8_t> payload);

}  // namespace d2pr

#endif  // D2PR_NET_WIRE_H_
