// User-item rating generator (the MovieLens-merge analog of §4.1.1).
//
// The paper merges IMDB with MovieLens to obtain 1-5 star ratings whose
// per-movie average defines movie significance. This module simulates that
// external evidence: a population of raters with personal bias and taste
// noise rates a subset of venues; the observed per-venue mean is then a
// *noisy, sparsity-limited* estimate of venue quality — exactly the kind
// of ground truth recommendation metrics need.

#ifndef D2PR_DATAGEN_RATINGS_H_
#define D2PR_DATAGEN_RATINGS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/bipartite_world.h"
#include "graph/types.h"

namespace d2pr {

/// \brief One observed rating.
struct Rating {
  int32_t user = 0;
  NodeId item = 0;     ///< Venue id in the originating world.
  double stars = 0.0;  ///< 1.0 .. 5.0.
};

/// \brief Rating-model parameters.
struct RatingsConfig {
  int32_t num_users = 500;
  /// Each user rates this many distinct venues (capped by venue count).
  int32_t ratings_per_user = 20;
  /// Std-dev of each user's personal offset (grumpy vs generous raters).
  double user_bias_sigma = 0.4;
  /// Per-rating taste noise.
  double taste_sigma = 0.5;
  /// Popularity bias: probability mass of choosing venue r to rate is
  /// proportional to (venue size + 1)^popularity_exponent; 0 = uniform.
  double popularity_exponent = 0.7;
  uint64_t seed = 99;
};

/// \brief The generated table plus per-venue aggregates.
struct RatingsTable {
  std::vector<Rating> ratings;
  /// Mean observed stars per venue; venues with no ratings hold the
  /// global mean (flat prior) so the vector is usable as a significance.
  std::vector<double> venue_mean;
  /// Number of ratings each venue received.
  std::vector<int32_t> venue_count;
  double global_mean = 0.0;
};

/// \brief Simulates raters over `world`'s venues. Rating value:
/// clamp(1 + 4·quality(r) + bias(u) + noise, 1, 5).
Result<RatingsTable> GenerateRatings(const BipartiteWorld& world,
                                     const RatingsConfig& config);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_RATINGS_H_
