// GraphPartitioner: vertex partitions of a CsrGraph into per-shard
// subgraphs for block-iterative (distributed-style) PageRank solves.
//
// A partition assigns every node to exactly one shard (its *owner*). Each
// shard materializes two local CSR structures over its owned nodes:
//
//   * an out-CSR of the owned rows — the shard's slice of the forward
//     adjacency, targets kept as global ids so cross-shard arcs are
//     directly visible, plus the global arc offset of each row so the
//     shard can slice per-arc data (transition probabilities) out of a
//     shared TransitionMatrix without copying it;
//   * an in-CSR of the owned nodes as *destinations* — for each owned
//     node, its incoming arcs sorted by ascending global source, each
//     carrying the global arc index of the forward arc it mirrors. This
//     is the pull side of the block iteration: a sweep computes an owned
//     node's next value by folding its in-row, reading remote sources
//     from the iterate published by their owner shards.
//
// Arcs whose source and destination live on different shards are
// *boundary* arcs: they are exactly the mass exchanged between shards in
// a block sweep, and the partitioner counts them per shard (the exchange
// volume a real deployment would put on the wire). The in-CSR keeps
// interior and boundary arcs merged in source order rather than split,
// because the block power solver's bit-parity contract (see
// core/block_solver.h) requires contributions to fold in ascending global
// source order — the same order TransitionMatrix::Multiply produces.
//
// TransitionSlices (below, built by core/transition_slices.h) pairs each
// shard's in-CSR with a contiguous slice of transition probabilities in
// the same order, so a block sweep streams its per-arc data instead of
// gathering it through the O(|E|) global arc index — the locality (and,
// for the shard-local construction path, the O(|V|)-exchange memory
// model) the distributed story depends on.
//
// Two schemes:
//   * kRange — contiguous, balanced node ranges (locality-preserving for
//     graphs with id-local structure, e.g. BFS- or time-ordered ids);
//   * kHash — owner = node id modulo shard count (load-balancing for
//     adversarial id orders; matches serve/ModuloShardMap, so a router's
//     seed ownership and a partition's node ownership agree).
//
// Degenerate inputs are well-formed, never fatal: an empty graph or a
// shard count exceeding the node count simply yields shards that own
// nothing; a shard of all-dangling nodes has an empty out-CSR. The only
// build error is a zero shard count.

#ifndef D2PR_GRAPH_PARTITION_H_
#define D2PR_GRAPH_PARTITION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace d2pr {

/// \brief How nodes are assigned to shards.
enum class PartitionScheme {
  /// Contiguous node ranges, sizes differing by at most one.
  kRange,
  /// Owner = node id modulo shard count.
  kHash,
};

/// \brief Human-readable scheme name ("range", "hash").
const char* PartitionSchemeName(PartitionScheme scheme);

/// \brief The shard owning `node` under `scheme` for a `num_shards`-way
/// partition of `num_nodes` nodes (O(1), closed-form per scheme).
///
/// This is THE ownership rule: GraphPartition, the
/// DistributedCoordinator, and the shard-cut loader
/// (graph/shard_cut.h) all delegate here, so the three consumers that
/// must agree on ownership can never drift.
size_t PartitionOwnerOf(PartitionScheme scheme, NodeId node, NodeId num_nodes,
                        size_t num_shards);

/// \brief Partitioner knobs.
struct PartitionOptions {
  PartitionScheme scheme = PartitionScheme::kRange;
  /// Number of shards; must be >= 1 (0 is InvalidArgument, not clamped —
  /// callers who want clamping decide that policy themselves).
  size_t num_shards = 2;
  /// Materialize each shard's out-CSR (the forward adjacency slice).
  /// The pull-style block solvers consume only the in-CSR — and the
  /// transition slices (TransitionSlices) are in-CSR-aligned too — so
  /// consumers that exist purely to serve (EngineRouter's
  /// partitioned-subgraph mode) pass false and save an O(|E|) copy of
  /// the arc arrays; the boundary/dangling accounting is computed either
  /// way. Push-style consumers keep the default.
  bool build_out_csr = true;
};

/// \brief One shard's materialized subgraph: local CSR of owned rows plus
/// the in-arc index used for pull-style block sweeps.
///
/// All node ids stored here are *global*; "local" refers to the arrays
/// holding only this shard's slice. `owned` is ascending, so local index
/// k corresponds to global node `owned[k]` and binary search inverts the
/// mapping (GraphPartition::OwnerOf is O(1) instead).
struct PartitionShard {
  /// Owned nodes, ascending global ids. May be empty.
  std::vector<NodeId> owned;

  // --- out-CSR of owned rows (forward slice) ---
  // Empty (all three vectors) when built with build_out_csr = false;
  // the counters below are filled regardless.
  /// Row boundaries into out_targets; size owned.size() + 1.
  std::vector<EdgeIndex> out_offsets;
  /// Global target ids, ascending within each row (CSR order preserved).
  std::vector<NodeId> out_targets;
  /// Global arc index of each owned row's first arc; size owned.size().
  /// Owned rows are whole rows of the source graph, so arc `j` of local
  /// row `k` is global arc out_arc_begin[k] + j.
  std::vector<EdgeIndex> out_arc_begin;

  // --- in-CSR of owned destinations (pull index) ---
  /// Row boundaries into in_sources / in_arc_index; size owned.size() + 1.
  std::vector<EdgeIndex> in_offsets;
  /// Global source ids, strictly ascending within each row.
  std::vector<NodeId> in_sources;
  /// Global arc index (into CsrGraph::targets() / TransitionMatrix::
  /// probs()) of the forward arc source -> owned destination.
  std::vector<EdgeIndex> in_arc_index;
  /// 1 when the arc's source is owned by this shard, 0 when it crosses
  /// the boundary. Precomputed so per-sweep consumers (block
  /// Gauss-Seidel chooses live vs frozen values by this bit) never pay
  /// an ownership lookup in their inner loop.
  std::vector<uint8_t> in_interior;

  // --- exchange accounting ---
  /// Owned out-arcs whose target another shard owns (push-side boundary).
  EdgeIndex boundary_out_arcs = 0;
  /// In-arcs whose source another shard owns (pull-side boundary; the
  /// values this shard reads from remote slices each sweep).
  EdgeIndex boundary_in_arcs = 0;
  /// Owned nodes with no outgoing arcs.
  std::vector<NodeId> dangling_owned;

  size_t num_owned() const { return owned.size(); }
  EdgeIndex num_out_arcs() const {
    return static_cast<EdgeIndex>(out_targets.size());
  }
  EdgeIndex num_in_arcs() const {
    return static_cast<EdgeIndex>(in_sources.size());
  }
};

/// \brief Per-shard contiguous transition-probability slices, aligned
/// position-for-position with each shard's in-CSR.
///
/// in_probs[s][idx] is the probability of the arc a shard's pull sweep
/// reads at in-CSR position idx — the same value as
/// TransitionMatrix::probs()[shard.in_arc_index[idx]], but laid out so
/// the block solvers' inner loops stream it sequentially instead of
/// gathering through the O(|E|) global arc index (the indirection that
/// costs ~65% at 100k nodes; see results/partition_bench.md). The
/// dangling view (bitmap + ascending list) rides along because the
/// sliced solvers never see a TransitionMatrix at all.
///
/// Built by core/transition_slices.h, either by slicing a resolved
/// whole-graph matrix or locally from each shard's rows plus an O(|V|)
/// broadcast of per-node metric state — the two paths are bitwise
/// identical (tests/partition_slice_test.cc).
struct TransitionSlices {
  NodeId num_nodes = 0;
  /// One contiguous prob slice per shard, sized shard.num_in_arcs().
  std::vector<std::vector<double>> in_probs;
  /// is_dangling[v] != 0 iff node v has no outgoing arcs; size num_nodes.
  std::vector<uint8_t> is_dangling;
  /// Dangling nodes, ascending global ids (the fold order the solvers'
  /// bit-parity contract requires).
  std::vector<NodeId> dangling;
};

/// \brief A complete vertex partition of one graph.
class GraphPartition {
 public:
  /// Partitions `graph` under `options`. InvalidArgument when
  /// options.num_shards == 0; every other input (including the empty
  /// graph and num_shards > num_nodes) produces a valid partition.
  static Result<GraphPartition> Build(const CsrGraph& graph,
                                      const PartitionOptions& options);

  PartitionScheme scheme() const { return scheme_; }
  size_t num_shards() const { return shards_.size(); }
  NodeId num_nodes() const { return num_nodes_; }

  const PartitionShard& shard(size_t index) const { return shards_[index]; }

  /// The shard owning `node` (O(1), closed-form per scheme).
  size_t OwnerOf(NodeId node) const;

  /// OK iff `slices` is shaped for this partition: matching node count,
  /// one prob slice per shard, each sized to that shard's in-CSR, and a
  /// node-sized dangling bitmap. The sliced block solvers call this
  /// before trusting the slice layout.
  Status ValidateSlices(const TransitionSlices& slices) const;

  /// Total cross-shard arcs (each boundary arc counted once, on its
  /// destination's shard).
  EdgeIndex boundary_arcs() const { return boundary_arcs_; }
  /// Fraction of all arcs that cross shards; 0 for arc-free graphs.
  double BoundaryFraction() const;

  /// One-line summary for logs and the CLI.
  std::string ToString() const;

 private:
  GraphPartition() = default;

  PartitionScheme scheme_ = PartitionScheme::kRange;
  NodeId num_nodes_ = 0;
  EdgeIndex boundary_arcs_ = 0;
  std::vector<PartitionShard> shards_;
};

}  // namespace d2pr

#endif  // D2PR_GRAPH_PARTITION_H_
