// DegreeBoundIndex: per-node upper bounds on transition in-probabilities,
// the degree statistic behind certified top-k pruning.
//
// The paper's central observation is that a node's significance is tightly
// coupled to its degree through the transition model: every column of the
// de-coupled transition matrix T assigns destination t a probability
// proportional to m(t)^-p (its metric raised to -p), so the largest
// probability any single arc can deliver into t,
//
//   ub_in(t) = max over arcs (u -> t) of T(t, u),
//
// is a pure function of the degree structure — computable in one O(|E|)
// pass, once per (graph, p, beta, metric), independent of the query seed.
// TopKSolver (topk_solver.h) turns this into a certified score bound: any
// residual mass R still unpushed can contribute at most alpha * R * ub_in(t)
// to node t's final score, because a random-walk step concentrates at most
// ub_in(t) of any distribution's mass onto t. Nodes whose bound is too
// small to ever reach the running k-th best score are pruned without being
// touched, which is what makes bounded local push terminate early.
//
// The index also stores every node ordered by descending ub_in, so the
// solver can bound the best never-touched node by reading a sorted prefix
// instead of scanning all |V| nodes each certification round.
//
// Seed independence is deliberate: under dangling re-injection the
// effective transition column of a dangling node is the seed distribution
// itself, so the solver folds `seed(t)` into the bound at query time (see
// TopKSolver) while this index stays cacheable per TransitionKey alongside
// the TransitionMatrix (api/transition_resolver.h).

#ifndef D2PR_TOPK_DEGREE_BOUND_H_
#define D2PR_TOPK_DEGREE_BOUND_H_

#include <span>
#include <vector>

#include "core/transition.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace d2pr {

/// \brief Immutable per-node max in-probability bounds for one transition
/// matrix, plus a descending-by-bound node order.
class DegreeBoundIndex {
 public:
  /// One O(|E|) pass over the transition probabilities plus an
  /// O(|V| log |V|) sort. `transition` must have been built from `graph`.
  static DegreeBoundIndex Build(const CsrGraph& graph,
                                const TransitionMatrix& transition);

  NodeId num_nodes() const {
    return static_cast<NodeId>(max_in_prob_.size());
  }

  /// Largest transition probability any single arc delivers into `node`;
  /// 0 for nodes with no in-arcs. Excludes dangling re-injection (seed
  /// dependent; the solver adds it at query time).
  double MaxInProb(NodeId node) const {
    return max_in_prob_[static_cast<size_t>(node)];
  }

  std::span<const double> max_in_prob() const { return max_in_prob_; }

  /// Every node, ordered by MaxInProb descending (ties by ascending node
  /// id, so the order is deterministic).
  std::span<const NodeId> ByBoundDescending() const { return order_; }

  /// True when the source graph has at least one dangling node — the
  /// solver must then widen bounds by the re-injected seed mass.
  bool has_dangling() const { return has_dangling_; }

 private:
  std::vector<double> max_in_prob_;
  std::vector<NodeId> order_;
  bool has_dangling_ = false;
};

}  // namespace d2pr

#endif  // D2PR_TOPK_DEGREE_BOUND_H_
