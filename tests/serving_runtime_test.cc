// ServingRuntime behavior: a parallel RankBatch must be element-for-
// element identical to the engine's sequential RankBatch (mixed solvers,
// personalization, warm-start chains, pre-populated caches), RankAsync
// must agree with Rank, errors must surface as the sequential fail-fast
// status, and the score cache must short-circuit repeated queries.

#include "serve/serving_runtime.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/classic_generators.h"

namespace d2pr {
namespace {

Result<CsrGraph> TestGraph(uint64_t seed, NodeId nodes = 250,
                           int64_t edges = 750) {
  Rng rng(seed);
  return ErdosRenyi(nodes, edges, &rng);
}

void ExpectResponsesIdentical(const RankResponse& parallel,
                              const RankResponse& sequential, size_t index) {
  SCOPED_TRACE("request index " + std::to_string(index));
  EXPECT_EQ(parallel.scores, sequential.scores);  // exact, not approximate
  EXPECT_EQ(parallel.method, sequential.method);
  EXPECT_EQ(parallel.iterations, sequential.iterations);
  EXPECT_EQ(parallel.pushes, sequential.pushes);
  EXPECT_EQ(parallel.converged, sequential.converged);
  EXPECT_EQ(parallel.residual, sequential.residual);
  EXPECT_EQ(parallel.transition_cache_hit, sequential.transition_cache_hit);
  EXPECT_EQ(parallel.warm_start_hit, sequential.warm_start_hit);
}

/// A mixed serving workload: global and personalized queries across all
/// three solvers, two warm-start sweep chains, and repeated parameter
/// points that exercise the transition cache.
std::vector<RankRequest> MixedWorkload(NodeId num_nodes) {
  std::vector<RankRequest> requests;
  const std::vector<double> p_values = {0.3, 0.8};
  for (int i = 0; i < 36; ++i) {
    RankRequest request;
    request.p = p_values[i % p_values.size()];
    request.tolerance = 1e-9;
    switch (i % 3) {
      case 0:
        request.method = SolverMethod::kPower;
        break;
      case 1:
        request.method = SolverMethod::kGaussSeidel;
        request.alpha = 0.9;
        break;
      case 2:
        request.method = SolverMethod::kForwardPush;
        request.push_epsilon = 1e-6;
        request.seeds = {static_cast<NodeId>((i * 7) % num_nodes)};
        break;
    }
    if (i % 5 == 0) {
      request.seeds = {static_cast<NodeId>(i % num_nodes),
                       static_cast<NodeId>((i * 3 + 1) % num_nodes)};
      if (request.method == SolverMethod::kForwardPush) {
        request.seeds.resize(1);
      }
    }
    requests.push_back(std::move(request));
  }
  // Two interleaved warm-start sweep trajectories; the runtime must keep
  // each chain ordered even while everything else fans out.
  for (int i = 0; i < 6; ++i) {
    RankRequest sweep;
    sweep.p = -1.0 + 0.4 * i;
    sweep.tolerance = 1e-9;
    sweep.warm_start_tag = "sweep-a";
    requests.push_back(sweep);

    RankRequest tune;
    tune.p = 1.0;
    tune.alpha = 0.5 + 0.07 * i;
    tune.tolerance = 1e-9;
    tune.warm_start_tag = "sweep-b";
    requests.push_back(tune);
  }
  return requests;
}

TEST(ServingRuntimeTest, ParallelBatchIdenticalToSequentialReference) {
  auto graph = TestGraph(21);
  ASSERT_TRUE(graph.ok());
  const std::vector<RankRequest> requests =
      MixedWorkload(graph->num_nodes());

  D2prEngine sequential_engine = D2prEngine::Borrowing(*graph);
  auto sequential = sequential_engine.RankBatch(requests);
  ASSERT_TRUE(sequential.ok());

  D2prEngine parallel_engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      parallel_engine, {.num_threads = 4, .score_cache_capacity = 0});
  auto parallel = runtime.RankBatch(requests);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(parallel->size(), sequential->size());
  for (size_t i = 0; i < parallel->size(); ++i) {
    ExpectResponsesIdentical((*parallel)[i], (*sequential)[i], i);
  }
}

TEST(ServingRuntimeTest, ParallelBatchIdenticalAfterPriorTraffic) {
  auto graph = TestGraph(22);
  ASSERT_TRUE(graph.ok());

  // Both engines see identical prior traffic, so the batch starts from a
  // part-populated transition cache — the diagnostics replay must pick
  // up the engine's current LRU state, not assume a cold cache.
  std::vector<RankRequest> prior;
  for (double p : {0.3, 1.7}) {
    RankRequest request;
    request.p = p;
    request.tolerance = 1e-9;
    prior.push_back(request);
  }
  const std::vector<RankRequest> requests =
      MixedWorkload(graph->num_nodes());

  D2prEngine sequential_engine = D2prEngine::Borrowing(*graph);
  ASSERT_TRUE(sequential_engine.RankBatch(prior).ok());
  auto sequential = sequential_engine.RankBatch(requests);
  ASSERT_TRUE(sequential.ok());

  D2prEngine parallel_engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      parallel_engine, {.num_threads = 4, .score_cache_capacity = 0});
  ASSERT_TRUE(parallel_engine.RankBatch(prior).ok());
  auto parallel = runtime.RankBatch(requests);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(parallel->size(), sequential->size());
  for (size_t i = 0; i < parallel->size(); ++i) {
    ExpectResponsesIdentical((*parallel)[i], (*sequential)[i], i);
  }
}

TEST(ServingRuntimeTest, RepeatedParallelBatchesStayIdentical) {
  auto graph = TestGraph(23);
  ASSERT_TRUE(graph.ok());
  const std::vector<RankRequest> requests =
      MixedWorkload(graph->num_nodes());

  D2prEngine sequential_engine = D2prEngine::Borrowing(*graph);
  D2prEngine parallel_engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      parallel_engine, {.num_threads = 4, .score_cache_capacity = 0});

  // Warm trajectories and cache state persist across batches; the
  // equivalence must hold for every subsequent batch, not just the first.
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto sequential = sequential_engine.RankBatch(requests);
    ASSERT_TRUE(sequential.ok());
    auto parallel = runtime.RankBatch(requests);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), sequential->size());
    for (size_t i = 0; i < parallel->size(); ++i) {
      ExpectResponsesIdentical((*parallel)[i], (*sequential)[i], i);
    }
  }
}

TEST(ServingRuntimeTest, EmptyBatchReturnsEmpty) {
  auto graph = TestGraph(24);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(engine);
  auto responses = runtime.RankBatch({});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(ServingRuntimeTest, BatchErrorMatchesSequentialFailFastStatus) {
  auto graph = TestGraph(25);
  ASSERT_TRUE(graph.ok());
  std::vector<RankRequest> requests = MixedWorkload(graph->num_nodes());
  requests[10].alpha = 1.5;  // invalid
  requests[20].p = std::numeric_limits<double>::quiet_NaN();  // also invalid

  D2prEngine sequential_engine = D2prEngine::Borrowing(*graph);
  auto sequential = sequential_engine.RankBatch(requests);
  ASSERT_FALSE(sequential.ok());

  D2prEngine parallel_engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      parallel_engine, {.num_threads = 4, .score_cache_capacity = 0});
  auto parallel = runtime.RankBatch(requests);
  ASSERT_FALSE(parallel.ok());

  // The lowest failing index (10) wins in both paths.
  EXPECT_EQ(parallel.status().ToString(), sequential.status().ToString());
}

TEST(ServingRuntimeTest, RankAsyncAgreesWithRank) {
  auto graph = TestGraph(26);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime =
      ServingRuntime::Borrowing(engine, {.num_threads = 2});

  RankRequest request;
  request.p = 0.7;
  request.tolerance = 1e-9;
  auto future = runtime.RankAsync(request);
  auto async_response = future.get();
  ASSERT_TRUE(async_response.ok());

  auto sync_response = runtime.Rank(request);
  ASSERT_TRUE(sync_response.ok());
  EXPECT_EQ(async_response->scores, sync_response->scores);

  RankRequest invalid = request;
  invalid.alpha = -0.5;
  auto failed = runtime.RankAsync(invalid).get();
  EXPECT_FALSE(failed.ok());
}

TEST(ServingRuntimeTest, ScoreCacheShortCircuitsRepeatedQueries) {
  auto graph = TestGraph(27);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      engine, {.num_threads = 2, .score_cache_capacity = 16});

  RankRequest request;
  request.p = 0.4;
  request.tolerance = 1e-9;
  auto first = runtime.Rank(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.stats().requests, 1);

  auto second = runtime.Rank(request);
  ASSERT_TRUE(second.ok());
  // Served from the memo: the engine never saw the repeat.
  EXPECT_EQ(engine.stats().requests, 1);
  EXPECT_EQ(second->scores, first->scores);
  EXPECT_EQ(runtime.score_cache().stats().hits, 1);

  // A whole batch of the identical query costs at most one more solve
  // (the responses are memo copies either way).
  std::vector<RankRequest> batch(32, request);
  auto responses = runtime.RankBatch(batch);
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(engine.stats().requests, 1);
  for (const RankResponse& response : *responses) {
    EXPECT_EQ(response.scores, first->scores);
  }
}

TEST(ServingRuntimeTest, ColdIdenticalBatchSolvesExactlyOnce) {
  auto graph = TestGraph(29);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      engine, {.num_threads = 4, .score_cache_capacity = 16});

  // Nothing is memoized yet: without single-flight, up to num_threads
  // workers would all miss and duplicate the identical solve.
  RankRequest request;
  request.p = 0.6;
  request.tolerance = 1e-9;
  std::vector<RankRequest> batch(32, request);
  auto responses = runtime.RankBatch(batch);
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(engine.stats().requests, 1);
  for (const RankResponse& response : *responses) {
    EXPECT_EQ(response.scores, (*responses)[0].scores);
  }
}

TEST(ServingRuntimeTest, WarmTaggedRequestsBypassScoreCache) {
  auto graph = TestGraph(28);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime = ServingRuntime::Borrowing(
      engine, {.num_threads = 2, .score_cache_capacity = 16});

  RankRequest request;
  request.p = 0.4;
  request.tolerance = 1e-9;
  request.warm_start_tag = "trajectory";
  ASSERT_TRUE(runtime.Rank(request).ok());
  ASSERT_TRUE(runtime.Rank(request).ok());
  // Both executions reached the engine; nothing was memoized.
  EXPECT_EQ(engine.stats().requests, 2);
  EXPECT_EQ(runtime.score_cache().size(), 0u);
}

}  // namespace
}  // namespace d2pr
