// Figure 11: beta x p on weighted graphs for application Group C. Paper
// shape: connection strength alone (beta = 1) is good but not best — the
// highest overall correlations come from beta in {0, 0.25} with boosting
// (p <= 0), i.e. degree de-coupling is useful even where degree is
// informative.

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupBetaFigure(
      d2pr::ApplicationGroup::kBoostingHelps,
      "Figure 11: beta x p interplay on weighted graphs (Group C)",
      "Figure 11(a)-(c): weighted graphs, beta in {0, .25, .5, .75, 1}, "
      "alpha = 0.85",
      "figure11");
}
