// Flag vocabulary and combination rules of the d2pr_server and
// d2pr_loadgen CLIs, split out of the binaries so tests/net_flags_test.cc
// can assert every accepted and rejected combination without spawning
// processes (the same arrangement d2pr_rank_flags.h has with
// tests/flags_test.cc).
//
// Validate*Flags performs every check that maps to exit code 2 (usage
// error): unknown flags, numeric ranges (--port outside [0, 65535] or
// [1, 65535], --deadline-ms=0, --zipf-s outside (0, 8], ...), value
// vocabularies, and cross-flag rules. Each binary calls its validator
// once after parsing and before any work.

#ifndef D2PR_TOOLS_D2PR_NET_FLAGS_H_
#define D2PR_TOOLS_D2PR_NET_FLAGS_H_

#include "common/flags.h"
#include "common/status.h"

namespace d2pr {

/// Largest --zipf-s the loadgen accepts; past this the distribution is
/// effectively a point mass on node 1 and the "load mix" is a single
/// repeated request.
inline constexpr double kMaxZipfExponent = 8.0;

/// \brief Validates the d2pr_server flag set. OK means well-formed; any
/// error corresponds to exit code 2 in the binary. Covers both the
/// front-door mode and --shard-role (which hosts one partition shard
/// behind the v2 wire and excludes the serving-policy flags), including
/// the pre-cut path: --shard-file requires --shard-role and excludes
/// every graph and topology flag (the cut's validated metadata supplies
/// shard id, count, scheme, and graph identity).
Status ValidateServerFlags(const Flags& flags);

/// \brief Validates the d2pr_loadgen flag set (same contract).
Status ValidateLoadGenFlags(const Flags& flags);

/// \brief Validates the d2pr_cluster flag set (same contract):
/// --shard-ports is required, solver/transition knobs are range-checked,
/// and the graph flags follow the server's rules. --cut-dir points the
/// launcher at a directory of pre-cut shard files to cross-check
/// against the graph before any server is contacted.
Status ValidateClusterFlags(const Flags& flags);

/// \brief Validates the d2pr_partition_cut flag set (same contract):
/// --out-dir is required, --shards >= 1, scheme and graph flags follow
/// the server's rules.
Status ValidatePartitionCutFlags(const Flags& flags);

}  // namespace d2pr

#endif  // D2PR_TOOLS_D2PR_NET_FLAGS_H_
