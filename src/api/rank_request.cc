#include "api/rank_request.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace d2pr {

Status ValidateRankRequestParameters(const RankRequest& request) {
  // Mirror the transition builder's parameter checks before any cache is
  // touched: the cache key folds beta to 0 on unweighted graphs, which
  // must not let an out-of-range beta hit a cached matrix instead of
  // erroring.
  if (!std::isfinite(request.p)) {
    return Status::InvalidArgument(
        StrCat("de-coupling weight p must be finite, got ", request.p));
  }
  if (!(request.beta >= 0.0 && request.beta <= 1.0)) {  // rejects NaN too
    return Status::InvalidArgument(
        StrCat("beta must lie in [0, 1], got ", request.beta));
  }
  // Pre-check the solver knobs too (the solvers re-validate; messages
  // mirror theirs): an invalid request must not pay an O(|E|) transition
  // build nor insert an entry that evicts a hot one.
  if (!(request.alpha >= 0.0) || request.alpha >= 1.0) {
    return Status::InvalidArgument(
        StrCat("alpha must lie in [0, 1), got ", request.alpha));
  }
  if (request.top_k < 0) {
    return Status::InvalidArgument(
        StrCat("top_k must be >= 0 (0 = exact serving), got ",
               request.top_k));
  }
  if (request.method == SolverMethod::kForwardPush) {
    if (!(request.push_epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (request.dangling == DanglingPolicy::kSelfLoop) {
      return Status::InvalidArgument(
          "forward push does not support DanglingPolicy::kSelfLoop");
    }
  } else {
    if (!(request.tolerance > 0.0)) {
      return Status::InvalidArgument(
          StrCat("tolerance must be positive, got ", request.tolerance));
    }
    if (request.max_iterations < 1) {
      return Status::InvalidArgument(
          StrCat("max_iterations must be >= 1, got ",
                 request.max_iterations));
    }
  }
  return Status::OK();
}

TruncatedTopK TruncateToTopK(std::span<const double> scores, int top_k,
                             double certify_margin) {
  TruncatedTopK result;
  if (top_k <= 0 || scores.empty()) return result;
  const size_t want = std::min(static_cast<size_t>(top_k), scores.size());
  std::vector<NodeId> order(scores.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  const auto by_score = [&scores](NodeId a, NodeId b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  };
  // One extra rank beyond the cut: the best excluded score is what the
  // certification margin is measured against.
  const size_t sorted = std::min(want + 1, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(sorted),
                    order.end(), by_score);
  const double best_excluded =
      want < order.size() ? scores[static_cast<size_t>(order[want])]
                          : -std::numeric_limits<double>::infinity();
  result.entries.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    RankedEntry entry;
    entry.node = order[i];
    entry.score = scores[static_cast<size_t>(order[i])];
    entry.certified = entry.score >= best_excluded + certify_margin;
    result.entries.push_back(entry);
  }
  if (want < order.size()) {
    result.uncertainty_gap = std::max(
        0.0, best_excluded + certify_margin - result.entries.back().score);
  }
  return result;
}

}  // namespace d2pr
