// Engine-routed implementations of the query helpers declared in
// core/d2pr.h, core/sweeps.h, and core/tuner.h.
//
// They live in the api layer (not core) so the dependency stays
// one-directional: api builds on core's solvers and transition models;
// core never includes api. The graph-taking free functions are thin
// wrappers over a call-scoped D2prEngine — an uncached cold Rank performs
// exactly the seed sequence (Build, then SolvePagerank from the teleport
// vector), so their results are bit-identical to the pre-engine
// implementations. The engine-taking overloads reuse the caller's
// transition cache and warm-start trajectories across calls.

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "api/engine.h"
#include "common/string_util.h"
#include "core/sweeps.h"
#include "core/tuner.h"
#include "stats/correlation.h"

namespace d2pr {

// ------------------------------------------------------------ one-shots

Result<PagerankResult> ComputeD2pr(const CsrGraph& graph,
                                   const D2prOptions& options) {
  D2prEngine engine = D2prEngine::Borrowing(graph);
  D2PR_ASSIGN_OR_RETURN(RankResponse response,
                        engine.Rank(ToRankRequest(options)));
  return ToPagerankResult(std::move(response));
}

Result<PagerankResult> ComputeConventionalPagerank(const CsrGraph& graph,
                                                   double alpha) {
  D2prOptions options;
  options.p = 0.0;
  options.beta = graph.weighted() ? 1.0 : 0.0;
  options.alpha = alpha;
  return ComputeD2pr(graph, options);
}

Result<PagerankResult> ComputePersonalizedD2pr(const CsrGraph& graph,
                                               std::span<const NodeId> seeds,
                                               const D2prOptions& options) {
  if (seeds.empty()) {
    // The engine reads empty seeds as "uniform teleport"; the personalized
    // entry point keeps rejecting them like SeededTeleport always has.
    return Status::InvalidArgument("teleport seed set must be non-empty");
  }
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request = ToRankRequest(options);
  request.seeds.assign(seeds.begin(), seeds.end());
  D2PR_ASSIGN_OR_RETURN(RankResponse response, engine.Rank(request));
  return ToPagerankResult(std::move(response));
}

// --------------------------------------------------------------- sweeps

namespace {

// Shared sweep loop: one knob of D2prOptions varies, everything else is
// fixed. Adjacent grid points have nearby stationary vectors, so each
// solve warm-starts from (an extrapolation of) its predecessors under a
// per-knob trajectory tag; the fixed point is unique, so results match a
// cold sweep within tolerance at a fraction of the iterations.
Result<std::vector<SweepPoint>> SweepField(D2prEngine& engine,
                                           const std::vector<double>& values,
                                           const D2prOptions& base,
                                           double D2prOptions::*field,
                                           const std::string& tag) {
  engine.ForgetWarmStart(tag);
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  for (double value : values) {
    D2prOptions options = base;
    options.*field = value;
    RankRequest request = ToRankRequest(options);
    request.warm_start_tag = tag;
    D2PR_ASSIGN_OR_RETURN(RankResponse response, engine.Rank(request));
    points.push_back({value, ToPagerankResult(std::move(response))});
  }
  return points;
}

}  // namespace

Result<std::vector<SweepPoint>> SweepP(D2prEngine& engine,
                                       const std::vector<double>& p_values,
                                       const D2prOptions& base) {
  return SweepField(engine, p_values, base, &D2prOptions::p, "sweep:p");
}

Result<std::vector<SweepPoint>> SweepAlpha(
    D2prEngine& engine, const std::vector<double>& alpha_values,
    const D2prOptions& base) {
  return SweepField(engine, alpha_values, base, &D2prOptions::alpha,
                    "sweep:alpha");
}

Result<std::vector<SweepPoint>> SweepBeta(
    D2prEngine& engine, const std::vector<double>& beta_values,
    const D2prOptions& base) {
  return SweepField(engine, beta_values, base, &D2prOptions::beta,
                    "sweep:beta");
}

Result<std::vector<SweepPoint>> SweepP(const CsrGraph& graph,
                                       const std::vector<double>& p_values,
                                       const D2prOptions& base) {
  D2prEngine engine = D2prEngine::Borrowing(graph);
  return SweepP(engine, p_values, base);
}

Result<std::vector<SweepPoint>> SweepAlpha(
    const CsrGraph& graph, const std::vector<double>& alpha_values,
    const D2prOptions& base) {
  D2prEngine engine = D2prEngine::Borrowing(graph);
  return SweepAlpha(engine, alpha_values, base);
}

Result<std::vector<SweepPoint>> SweepBeta(
    const CsrGraph& graph, const std::vector<double>& beta_values,
    const D2prOptions& base) {
  D2prEngine engine = D2prEngine::Borrowing(graph);
  return SweepBeta(engine, beta_values, base);
}

// ---------------------------------------------------------------- tuner

namespace {

constexpr double kInvPhi = 0.6180339887498949;  // 1/golden ratio

}  // namespace

Result<TuneResult> TuneDecouplingWeight(const CsrGraph& graph,
                                        std::span<const double> significance,
                                        const TuneOptions& options) {
  D2prEngine engine = D2prEngine::Borrowing(graph);
  return TuneDecouplingWeight(engine, significance, options);
}

Result<TuneResult> TuneDecouplingWeight(D2prEngine& engine,
                                        std::span<const double> significance,
                                        const TuneOptions& options) {
  const CsrGraph& graph = engine.graph();
  if (significance.size() != static_cast<size_t>(graph.num_nodes())) {
    return Status::InvalidArgument(
        StrCat("significance size ", significance.size(), " != num nodes ",
               graph.num_nodes()));
  }
  if (!(options.p_min < options.p_max)) {
    return Status::InvalidArgument("p_min must be < p_max");
  }
  if (!(options.coarse_step > 0.0)) {
    return Status::InvalidArgument("coarse_step must be positive");
  }

  // Probes chain along one warm-start trajectory: the coarse grid is
  // monotone in p, and every refinement probe stays within one grid cell
  // of the previous evaluation, so each solve starts near its fixed point.
  const std::string tag = kTuneWarmStartTag;
  engine.ForgetWarmStart(tag);
  TuneResult tune;
  auto evaluate = [&](double p) -> Result<double> {
    D2prOptions opts = options.base;
    opts.p = p;
    RankRequest request = ToRankRequest(opts);
    request.warm_start_tag = tag;
    D2PR_ASSIGN_OR_RETURN(RankResponse response, engine.Rank(request));
    const double corr = SpearmanCorrelation(response.scores, significance);
    tune.evaluated.emplace_back(p, corr);
    return corr;
  };

  // Coarse grid pass.
  double best_p = options.p_min;
  double best_corr = -2.0;
  for (double p = options.p_min; p <= options.p_max + 1e-12;
       p += options.coarse_step) {
    D2PR_ASSIGN_OR_RETURN(double corr, evaluate(p));
    if (corr > best_corr) {
      best_corr = corr;
      best_p = p;
    }
  }

  // Golden-section refinement inside the bracket around the best grid
  // point (one grid cell each side, clamped to the search range).
  double lo = std::max(options.p_min, best_p - options.coarse_step);
  double hi = std::min(options.p_max, best_p + options.coarse_step);
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  D2PR_ASSIGN_OR_RETURN(double f1, evaluate(x1));
  D2PR_ASSIGN_OR_RETURN(double f2, evaluate(x2));
  for (int iter = 0; iter < options.max_refine_iterations &&
                     (hi - lo) > options.refine_tolerance;
       ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      D2PR_ASSIGN_OR_RETURN(f2, evaluate(x2));
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      D2PR_ASSIGN_OR_RETURN(f1, evaluate(x1));
    }
  }

  // Report the best point seen anywhere (grid or refinement).
  for (const auto& [p, corr] : tune.evaluated) {
    if (corr > best_corr || (corr == best_corr && p == best_p)) {
      best_corr = corr;
      best_p = p;
    }
  }
  tune.best_p = best_p;
  tune.best_correlation = best_corr;
  return tune;
}

}  // namespace d2pr
