#include "linalg/vec_ops.h"

#include <cmath>

#include "common/check.h"

namespace d2pr {

double Sum(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  D2PR_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double NormL1(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += std::abs(v);
  return total;
}

double NormL2(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v * v;
  return std::sqrt(total);
}

double NormLInf(std::span<const double> values) {
  double best = 0.0;
  for (double v : values) best = std::max(best, std::abs(v));
  return best;
}

double DiffL1(std::span<const double> a, std::span<const double> b) {
  D2PR_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}

double DiffLInf(std::span<const double> a, std::span<const double> b) {
  D2PR_CHECK_EQ(a.size(), b.size());
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

void Axpy(double alpha, std::span<const double> x, std::span<double> out) {
  D2PR_CHECK_EQ(x.size(), out.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> values) {
  for (double& v : values) v *= alpha;
}

void Fill(double value, std::span<double> values) {
  for (double& v : values) v = value;
}

double NormalizeL1(std::span<double> values) {
  const double norm = NormL1(values);
  if (norm > 0.0) Scale(1.0 / norm, values);
  return norm;
}

std::vector<double> UniformVector(size_t n) {
  if (n == 0) return {};
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

}  // namespace d2pr
