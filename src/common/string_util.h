// Small string formatting helpers (gcc 12 lacks std::format).

#ifndef D2PR_COMMON_STRING_UTIL_H_
#define D2PR_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace d2pr {

/// \brief Concatenates the streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  ((out << args), ...);
  return out.str();
}

/// \brief Formats a double with fixed `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// \brief Formats a double in general notation with `precision` significant
/// digits (paper-style "0.988", "-0.05").
std::string FormatGeneral(double value, int precision);

/// \brief Formats a double losslessly for bitwise-comparison diagnostics:
/// max_digits10 significant digits (round-trips every finite double)
/// followed by the raw IEEE-754 bit pattern, e.g.
/// "0.10000000000000001 (bits 3fb999999999999a)". Error messages about
/// values compared BIT FOR BIT (the handshake's transition key) must use
/// this — default stream precision prints two differing doubles as the
/// same text, turning a real mismatch into an apparently absurd report
/// ("worker has p=0.1, handshake declares p=0.1").
std::string FormatExactDouble(double value);

/// \brief Formats an integer with thousands separators ("4,465,272").
std::string FormatWithCommas(int64_t value);

/// \brief Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// \brief True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Left-pads (negative width) or right-pads `text` to |width| chars.
std::string Pad(std::string_view text, int width);

/// \brief Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// \brief Parses a signed 64-bit integer; returns false on garbage.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace d2pr

#endif  // D2PR_COMMON_STRING_UTIL_H_
