// ShardServer over real loopback sockets: the same coordinator fleet the
// in-process suites drive, but through SocketShardChannel -> TCP ->
// ShardServer -> ShardWorker — proving the socket hosting layer preserves
// the bit-parity and rejection contracts, that a rejected handshake
// closes ONLY its own connection, and that framing garbage is counted
// and contained.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/block_solver.h"
#include "core/teleport.h"
#include "core/transition_slices.h"
#include "dist/coordinator.h"
#include "dist/shard_server.h"
#include "dist_test_util.h"
#include "graph/partition.h"
#include "net/socket.h"

namespace d2pr {
namespace {

/// A real loopback fleet: N workers, one ShardServer each, one socket
/// channel per shard.
struct SocketFleet {
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::unique_ptr<SocketShardChannel>> channels;
  std::vector<ShardChannel*> raw;

  SocketFleet() = default;
  SocketFleet(SocketFleet&&) = default;
  SocketFleet& operator=(SocketFleet&&) = default;
  ~SocketFleet() {
    for (auto& server : servers) server->Stop();
  }
};

/// The server sends the rejection reply BEFORE bumping its counter, so a
/// client can observe the status first; poll briefly instead of racing.
bool WaitForCount(const std::atomic<int64_t>& counter, int64_t expected) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (counter.load() == expected) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return counter.load() == expected;
}

SocketFleet MakeSocketFleet(const CsrGraph& graph, size_t num_shards) {
  SocketFleet fleet;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardWorkerOptions options;
    options.shard_id = s;
    options.num_shards = num_shards;
    auto worker = ShardWorker::Create(graph, options);
    D2PR_CHECK(worker.ok()) << worker.status().ToString();
    fleet.workers.push_back(std::move(*worker));
    fleet.servers.push_back(
        std::make_unique<ShardServer>(*fleet.workers.back()));
    D2PR_CHECK(fleet.servers.back()->Start().ok());
    auto channel = SocketShardChannel::Connect(
        "127.0.0.1", fleet.servers.back()->port());
    D2PR_CHECK(channel.ok()) << channel.status().ToString();
    fleet.channels.push_back(std::move(*channel));
    fleet.raw.push_back(fleet.channels.back().get());
  }
  return fleet;
}

TEST(DistServerTest, LoopbackFleetSolvesBitwiseIdentical) {
  Rng rng(48);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  PagerankOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-11;
  options.max_iterations = 2000;

  SocketFleet fleet = MakeSocketFleet(*graph, 2);
  CoordinatorOptions coordinator_options = MakeCoordinatorOptions(*graph);
  coordinator_options.sweep_deadline_ms = 10000;  // bounded, not hit
  DistributedCoordinator coordinator(fleet.raw, coordinator_options);
  ASSERT_TRUE(coordinator.Handshake().ok());
  auto distributed = coordinator.Solve(SolverMethod::kPower, teleport,
                                       options);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  auto partition = GraphPartition::Build(
      *graph, {.num_shards = 2, .build_out_csr = false});
  ASSERT_TRUE(partition.ok());
  auto slices = BuildTransitionSlicesLocal(*graph, *partition, {});
  ASSERT_TRUE(slices.ok());
  auto reference =
      SolvePagerankPartitioned(*slices, *partition, teleport, options);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(distributed->scores, reference->scores);
  EXPECT_EQ(distributed->iterations, reference->iterations);
  EXPECT_EQ(distributed->residual, reference->residual);

  for (auto& server : fleet.servers) {
    EXPECT_GT(server->stats().frames_handled.load(), 0);
    EXPECT_EQ(server->stats().protocol_errors.load(), 0);
    EXPECT_EQ(server->stats().handshake_rejects.load(), 0);
  }
}

TEST(DistServerTest, RejectedHandshakeClosesOnlyItsOwnConnection) {
  Rng rng(49);
  auto graph = BarabasiAlbert(120, 2, &rng);
  ASSERT_TRUE(graph.ok());

  SocketFleet fleet = MakeSocketFleet(*graph, 1);
  DistributedCoordinator owner(fleet.raw, MakeCoordinatorOptions(*graph));
  ASSERT_TRUE(owner.Handshake().ok());

  // A second coordinator with the wrong graph connects to the same
  // server. It must get the distinct rejection — and its connection,
  // not the owner's, is the one the server closes.
  auto intruder_channel =
      SocketShardChannel::Connect("127.0.0.1", fleet.servers[0]->port());
  ASSERT_TRUE(intruder_channel.ok());
  std::vector<ShardChannel*> intruder_raw = {intruder_channel->get()};
  CoordinatorOptions wrong = MakeCoordinatorOptions(*graph);
  wrong.graph_fingerprint ^= 1;
  DistributedCoordinator intruder(intruder_raw, wrong);
  const Status rejected = intruder.Handshake();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(WaitForCount(fleet.servers[0]->stats().handshake_rejects, 1));

  // The owner's claim and connection survived: a full solve still runs.
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  auto solved = owner.Solve(SolverMethod::kPower,
                            UniformTeleport(graph->num_nodes()), options);
  EXPECT_TRUE(solved.ok()) << solved.status().ToString();
}

TEST(DistServerTest, FramingGarbageIsCountedAndContained) {
  Rng rng(50);
  auto graph = BarabasiAlbert(80, 2, &rng);
  ASSERT_TRUE(graph.ok());

  SocketFleet fleet = MakeSocketFleet(*graph, 1);

  // A peer that is not speaking the protocol at all: 20 garbage bytes
  // where a frame header should be. The server must close that
  // connection (clean EOF from our side of the stream) and count one
  // protocol error — and keep serving real clients.
  auto garbage = Socket::Connect("127.0.0.1", fleet.servers[0]->port());
  ASSERT_TRUE(garbage.ok());
  const std::vector<uint8_t> junk(20, 0xab);
  ASSERT_TRUE(garbage->SendAll(junk.data(), junk.size()).ok());
  uint8_t byte = 0;
  bool clean_eof = false;
  const Status closed = garbage->RecvExact(&byte, 1, &clean_eof);
  EXPECT_TRUE(!closed.ok() || clean_eof);

  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph));
  ASSERT_TRUE(coordinator.Handshake().ok());
  EXPECT_EQ(fleet.servers[0]->stats().protocol_errors.load(), 1);
}

TEST(DistServerTest, StoppedServerYieldsUnavailableNotAHang) {
  Rng rng(51);
  auto graph = BarabasiAlbert(80, 2, &rng);
  ASSERT_TRUE(graph.ok());

  SocketFleet fleet = MakeSocketFleet(*graph, 1);
  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph));
  ASSERT_TRUE(coordinator.Handshake().ok());
  fleet.servers[0]->Stop();

  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  auto result = coordinator.Solve(SolverMethod::kPower,
                                  UniformTeleport(graph->num_nodes()),
                                  options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace d2pr
