// ScoreCache behavior: canonical request keys, TTL expiry on an
// injected clock, LFU eviction with insertion-order tie-breaks, and
// hit/miss/eviction accounting.

#include "serve/score_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

namespace d2pr {
namespace {

using std::chrono::seconds;
using TimePoint = std::chrono::steady_clock::time_point;

RankResponse MakeResponse(double tag) {
  RankResponse response;
  response.scores = {tag, tag + 1.0, tag + 2.0};
  response.iterations = 7;
  response.converged = true;
  response.residual = 1e-11;
  return response;
}

/// A cache on a hand-cranked clock starting at the epoch.
struct CacheOnFakeClock {
  explicit CacheOnFakeClock(size_t capacity, seconds ttl)
      : now(std::make_shared<TimePoint>()),
        cache([&] {
          ScoreCacheOptions options;
          options.capacity = capacity;
          options.ttl = ttl;
          options.now = [now = now] { return *now; };
          return options;
        }()) {}

  void Advance(seconds by) { *now += by; }

  std::shared_ptr<TimePoint> now;
  ScoreCache cache;
};

TEST(ScoreCacheTest, KeyCanonicalizesIdenticalRequests) {
  RankRequest a;
  a.p = 0.5;
  a.seeds = {3, 17};
  RankRequest b = a;
  EXPECT_EQ(ScoreCache::KeyFor(a), ScoreCache::KeyFor(b));
  // The warm-start tag never reaches the key: tagged requests bypass the
  // cache entirely, so the tag must not fragment it for anyone else.
  b.warm_start_tag = "sweep";
  EXPECT_EQ(ScoreCache::KeyFor(a), ScoreCache::KeyFor(b));
}

TEST(ScoreCacheTest, KeySeparatesEveryResponseAffectingField) {
  const RankRequest base;
  const std::string base_key = ScoreCache::KeyFor(base);

  RankRequest changed = base;
  changed.p = 0.25;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.alpha = 0.9;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.tolerance = 1e-8;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.max_iterations = 50;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.method = SolverMethod::kGaussSeidel;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.dangling = DanglingPolicy::kRenormalize;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.seeds = {5};
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.seeds = {5, 6};
  EXPECT_NE(ScoreCache::KeyFor(changed), ScoreCache::KeyFor([&] {
              RankRequest two = base;
              two.seeds = {56};
              return two;
            }()));
}

TEST(ScoreCacheTest, LookupReturnsInsertedResponse) {
  ScoreCache cache;
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", MakeResponse(4.0));
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scores, MakeResponse(4.0).scores);
  EXPECT_EQ(hit->iterations, 7);
  EXPECT_TRUE(hit->converged);

  const ScoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(ScoreCacheTest, TtlExpiresEntries) {
  CacheOnFakeClock fixture(8, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(9));
  EXPECT_TRUE(fixture.cache.Lookup("k").has_value());

  fixture.Advance(seconds(2));  // 11s since insert: past the 10s TTL
  EXPECT_FALSE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.size(), 0u);

  const ScoreCacheStats stats = fixture.cache.stats();
  EXPECT_EQ(stats.expirations, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ScoreCacheTest, ReinsertRestartsTtlWindow) {
  CacheOnFakeClock fixture(8, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(8));
  fixture.cache.Insert("k", MakeResponse(2.0));  // refresh
  fixture.Advance(seconds(8));                   // 16s after first insert
  auto hit = fixture.cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scores.front(), 2.0);
}

TEST(ScoreCacheTest, ZeroTtlNeverExpires) {
  CacheOnFakeClock fixture(8, seconds(0));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(1000000));
  EXPECT_TRUE(fixture.cache.Lookup("k").has_value());
}

TEST(ScoreCacheTest, LfuEvictsLeastFrequentlyUsed) {
  ScoreCacheOptions options;
  options.capacity = 2;
  ScoreCache cache(options);
  cache.Insert("a", MakeResponse(1.0));
  cache.Insert("b", MakeResponse(2.0));
  // Make "a" the hot entry.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());

  cache.Insert("c", MakeResponse(3.0));  // over capacity: "b" (0 uses) goes
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ScoreCacheTest, LfuTieBreaksByOldestInsertion) {
  ScoreCacheOptions options;
  options.capacity = 2;
  ScoreCache cache(options);
  cache.Insert("old", MakeResponse(1.0));
  cache.Insert("new", MakeResponse(2.0));
  cache.Insert("c", MakeResponse(3.0));  // both have 0 uses: "old" goes
  EXPECT_FALSE(cache.Lookup("old").has_value());
  EXPECT_TRUE(cache.Lookup("new").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
}

TEST(ScoreCacheTest, ExpiredEntriesGoBeforeLfuVictims) {
  CacheOnFakeClock fixture(2, seconds(10));
  fixture.cache.Insert("stale", MakeResponse(1.0));
  // "stale" is the hot entry, but it is past TTL at the next insert.
  EXPECT_TRUE(fixture.cache.Lookup("stale").has_value());
  fixture.Advance(seconds(5));
  fixture.cache.Insert("fresh", MakeResponse(2.0));
  fixture.Advance(seconds(6));  // "stale" 11s old, "fresh" 6s old
  fixture.cache.Insert("c", MakeResponse(3.0));
  EXPECT_FALSE(fixture.cache.Lookup("stale").has_value());
  EXPECT_TRUE(fixture.cache.Lookup("fresh").has_value());
  EXPECT_TRUE(fixture.cache.Lookup("c").has_value());
  EXPECT_EQ(fixture.cache.stats().expirations, 1);
  EXPECT_EQ(fixture.cache.stats().evictions, 0);
}

TEST(ScoreCacheTest, ZeroCapacityDisablesCaching) {
  ScoreCacheOptions options;
  options.capacity = 0;
  ScoreCache cache(options);
  cache.Insert("k", MakeResponse(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().insertions, 0);
}

// A zero-capacity cache constructed with a TTL must behave like the plain
// zero-capacity cache: nothing is ever resident, so nothing can expire,
// and every lookup is an honest miss.
TEST(ScoreCacheTest, ZeroCapacityWithTtlConstruction) {
  CacheOnFakeClock fixture(0, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(11));
  fixture.cache.Insert("k2", MakeResponse(2.0));
  EXPECT_FALSE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.size(), 0u);

  const ScoreCacheStats stats = fixture.cache.stats();
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.expirations, 0);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.misses, 1);
}

// Expiry is strict: an entry is stale only *past* its TTL, so a lookup at
// exactly the boundary tick still serves it (and a tick later does not).
TEST(ScoreCacheTest, TtlBoundaryTickStillServes) {
  CacheOnFakeClock fixture(8, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(10));  // age == TTL, not > TTL
  EXPECT_TRUE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.stats().expirations, 0);

  fixture.Advance(seconds(1));  // first tick past the boundary
  EXPECT_FALSE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.stats().expirations, 1);
}

}  // namespace
}  // namespace d2pr
