#include "common/binary_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/string_util.h"

namespace d2pr {

uint64_t Checksum64(const void* data, size_t bytes, uint64_t seed) {
  constexpr uint64_t kPrime = 1099511628211ull;  // the 64-bit FNV prime
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t hash = seed;
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    hash ^= word;
    hash *= kPrime;
  }
  for (; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

namespace {

template <typename T>
void AppendRaw(std::vector<uint8_t>& out, T value) {
  const size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T ReadRaw(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

void AppendU32(std::vector<uint8_t>& out, uint32_t value) {
  AppendRaw(out, value);
}
void AppendU64(std::vector<uint8_t>& out, uint64_t value) {
  AppendRaw(out, value);
}
void AppendI64(std::vector<uint8_t>& out, int64_t value) {
  AppendRaw(out, value);
}
void AppendF64(std::vector<uint8_t>& out, double value) {
  AppendRaw(out, value);
}

uint32_t ReadU32(const uint8_t* p) { return ReadRaw<uint32_t>(p); }
uint64_t ReadU64(const uint8_t* p) { return ReadRaw<uint64_t>(p); }
int64_t ReadI64(const uint8_t* p) { return ReadRaw<int64_t>(p); }
double ReadF64(const uint8_t* p) { return ReadRaw<double>(p); }

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(StrCat("cannot open for mmap: ", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(StrCat("cannot stat: ", path));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  // MAP_PRIVATE: the mapping is read-only to us, and later writers
  // replacing the file (rename-over) must not mutate pages under a loaded
  // matrix.
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapped == MAP_FAILED) {
    return Status::IoError(StrCat("mmap failed: ", path));
  }
  return MmapFile(static_cast<const uint8_t*>(mapped), size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace d2pr
