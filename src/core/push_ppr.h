// Forward-push personalized PageRank (extension).
//
// The paper's authors point to locality-sensitive PPR computation as the
// scalable way to apply these rankings per-query (their ref [17]). This
// module implements the classic forward local-push scheme generalized to an
// arbitrary column-stochastic TransitionMatrix — so pushes work for any
// de-coupling weight p, not just conventional PageRank.
//
// Semantics: approximates ppr = (1-α) Σ_k (α T)^k s for a seed distribution
// s. Maintains an estimate vector and a residual vector; while some node u
// holds residual r[u] > epsilon, it is "pushed": (1-α)·r[u] moves into the
// estimate at u and α·r[u]·T(v,u) moves to each out-neighbor's residual.
// On termination every residual is <= epsilon, giving the L1 guarantee
// ||estimate - ppr||_1 <= epsilon · |V|.

#ifndef D2PR_CORE_PUSH_PPR_H_
#define D2PR_CORE_PUSH_PPR_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/transition.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Default safety cap on push operations for a graph of
/// `num_nodes` nodes: 512 * max(num_nodes, 1024). Generous — push work
/// scales like 1/((1-alpha)*epsilon) in theory — but finite, so a
/// pathological (tiny-epsilon) query terminates with completed == false
/// instead of spinning.
int64_t DefaultPushCap(NodeId num_nodes);

/// \brief Forward-push parameters.
struct PushOptions {
  double alpha = 0.85;       ///< Residual (walk-following) probability.
  double epsilon = 1e-7;     ///< Per-node residual threshold.
  /// Safety cap on push operations; any value <= 0 selects
  /// DefaultPushCap(|V|). When the cap is hit the partial estimate and
  /// residuals are returned with PushResult::completed == false.
  int64_t max_pushes = -1;
  /// Dangling-node residual handling: when true (default), residual at a
  /// dangling node is re-injected through the seed distribution (matching
  /// DanglingPolicy::kTeleport); when false it is dropped.
  bool reinject_dangling = true;
};

/// \brief Forward-push output.
struct PushResult {
  std::vector<double> scores;    ///< Approximate PPR estimate.
  std::vector<double> residual;  ///< Final residuals (all <= epsilon).
  int64_t pushes = 0;            ///< Number of push operations performed.
  bool completed = false;        ///< False if max_pushes was hit.
};

/// \brief Runs forward push from a seed distribution.
///
/// `seed` must be a probability distribution over the graph's nodes.
Result<PushResult> ForwardPushPpr(const CsrGraph& graph,
                                  const TransitionMatrix& transition,
                                  std::span<const double> seed,
                                  const PushOptions& options = {});

/// \brief Convenience: single-seed forward push.
Result<PushResult> ForwardPushPpr(const CsrGraph& graph,
                                  const TransitionMatrix& transition,
                                  NodeId seed,
                                  const PushOptions& options = {});

}  // namespace d2pr

#endif  // D2PR_CORE_PUSH_PPR_H_
