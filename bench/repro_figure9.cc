// Figure 9: relationship between beta and p on *weighted* graphs for
// application Group A. Paper shape: degree penalization (beta < 1) beats
// pure connection strength (beta = 1), and the more weight is given to
// connection strength, the larger the optimal p.

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupBetaFigure(
      d2pr::ApplicationGroup::kPenalizationHelps,
      "Figure 9: beta x p interplay on weighted graphs (Group A)",
      "Figure 9(a)-(c): weighted graphs, beta in {0, .25, .5, .75, 1}, "
      "alpha = 0.85",
      "figure9");
}
