// Block-iterative PageRank solvers over a vertex-partitioned graph.
//
// Both solvers iterate each shard's owned slice against a shared
// TransitionMatrix and exchange boundary mass between sweeps; dangling
// mass and teleportation are handled *globally*, exactly matching the
// single-graph solvers in core/pagerank.h and core/gauss_seidel.h (which
// themselves match core/teleport.h semantics). In-process, the "exchange"
// is each shard publishing its owned slice of the iterate and pulling
// remote values through the partition's boundary in-arc index — the data
// flow a multi-machine deployment would put on the wire.
//
// Parity contracts (enforced by tests/partition_parity_test.cc and
// tests/partition_fuzz_test.cc):
//
//   * SolvePagerankPartitioned is BIT-IDENTICAL to SolvePagerank for any
//     partition (any scheme, any shard count), including iteration counts
//     and residuals. This is by construction, not by tolerance: the
//     reference Multiply accumulates into out[j] in ascending global
//     source order (left-associated, from +0.0), and the partition's
//     in-CSR folds each owned destination's contributions in exactly that
//     order, with bitwise-equal per-arc products (the probabilities are
//     literally the same TransitionMatrix entries). Dangling mass folds
//     over the same ascending dangling list, the teleport blend is
//     element-wise, and the residual is the same full-vector DiffL1 — so
//     every float the reference computes, the block solve recomputes.
//   * SolveGaussSeidelPartitioned is a genuine *block* method — classic
//     Gauss-Seidel within a shard, Jacobi across shards (remote values
//     frozen at sweep start) — so its iterate path differs from the
//     single-graph Gauss-Seidel sweep, but both contract to the same
//     fixed point: with tolerance <= 1e-11 the solutions agree within
//     1e-9 (the bound the parity suite asserts).
//
// Shard sweeps write disjoint owned slices and read the frozen previous
// iterate, so they are data-race free and order-independent; pass a
// `parallel_for` to run them concurrently (serve/EngineRouter passes its
// worker pool). The global folds (dangling mass, normalization, residual)
// stay sequential on the calling thread — they are O(n) and their
// summation order is part of the bit-parity contract.
//
// Each solver has two overloads. The TransitionMatrix forms gather each
// arc's probability through the partition's global arc index
// (probs[in_arc_index[idx]]) — convenient, but the random stride defeats
// the prefetcher at scale (~65% overhead at 100k nodes). The
// TransitionSlices forms stream a per-shard contiguous prob slice
// (core/transition_slices.h) in lockstep with the in-CSR instead; since
// a slice holds bitwise the same values at the same fold positions, the
// sliced solves inherit the parity contracts verbatim (block power stays
// bit-identical to SolvePagerank, GS within tolerance).

#ifndef D2PR_CORE_BLOCK_SOLVER_H_
#define D2PR_CORE_BLOCK_SOLVER_H_

#include <functional>
#include <span>

#include "common/result.h"
#include "core/pagerank.h"
#include "core/transition.h"
#include "graph/partition.h"

namespace d2pr {

/// \brief Optional shard-sweep executor: invoke fn(0) .. fn(count - 1),
/// returning only when all invocations finished. The invocations are
/// independent (disjoint writes) and may run concurrently. An empty
/// function runs them sequentially inline.
using BlockParallelFor =
    std::function<void(size_t count, const std::function<void(size_t)>& fn)>;

/// \brief OK iff block Gauss-Seidel supports `dangling`; the
/// kRenormalize rejection (with its explanation) otherwise. Exposed so
/// serving layers can refuse the combination before paying a transition
/// build — there is exactly one copy of this contract.
Status ValidateBlockGaussSeidelPolicy(DanglingPolicy dangling);

/// \brief Block power iteration: bit-identical to
/// SolvePagerank(graph, transition, teleport, options) for any partition
/// of the same graph.
///
/// Requirements mirror SolvePagerank (alpha in [0, 1), tolerance > 0,
/// max_iterations >= 1, teleport a distribution over the nodes); the
/// partition must cover the same node count as the transition.
Result<PagerankResult> SolvePagerankPartitioned(
    const TransitionMatrix& transition, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for = {});

/// \brief Sliced block power iteration: identical semantics (and bits) to
/// the TransitionMatrix overload, but each shard streams its contiguous
/// in-CSR-aligned prob slice instead of gathering through the global arc
/// index. Requires `slices` shaped for `partition`
/// (GraphPartition::ValidateSlices) holding valid row-stochastic
/// probabilities — both construction paths in core/transition_slices.h
/// guarantee this.
Result<PagerankResult> SolvePagerankPartitioned(
    const TransitionSlices& slices, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for = {});

/// \brief Block Gauss-Seidel: per-shard Gauss-Seidel sweeps with remote
/// values frozen at sweep start (block Jacobi across shards). Converges
/// to the same fixed point as SolvePagerankGaussSeidel; agreement is
/// within solver tolerance, not bitwise.
///
/// DanglingPolicy::kRenormalize is rejected (InvalidArgument): when the
/// renormalization constant c differs from 1 (i.e. dangling mass is
/// being dropped), the Gauss-Seidel fixed point satisfies
/// c·x_v = α·Σ_{u sweeps before v} p·c·x_u + α·Σ_{u after v} p·x_u +
/// (1-α)t_v — it depends on the sweep order, which a block sweep cannot
/// reproduce. Solutions would silently drift O(α·dropped-mass) from the
/// single-graph reference (observed ~1e-3), so the combination fails
/// loudly instead. Use kTeleport (identical when no node dangles) or
/// block power iteration, whose kRenormalize parity is bitwise.
Result<PagerankResult> SolveGaussSeidelPartitioned(
    const TransitionMatrix& transition, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for = {});

/// \brief Sliced block Gauss-Seidel: same method and policy rules as the
/// TransitionMatrix overload (kRenormalize rejected), reading each
/// shard's contiguous prob slice and the slices' dangling view instead of
/// a matrix.
Result<PagerankResult> SolveGaussSeidelPartitioned(
    const TransitionSlices& slices, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for = {});

}  // namespace d2pr

#endif  // D2PR_CORE_BLOCK_SOLVER_H_
