#include "core/baselines.h"

#include "core/d2pr.h"
#include "core/teleport.h"
#include "linalg/vec_ops.h"

namespace d2pr {

std::vector<double> DegreeCentralityScores(const CsrGraph& graph) {
  std::vector<double> scores(static_cast<size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    scores[static_cast<size_t>(v)] =
        static_cast<double>(graph.OutDegree(v));
  }
  NormalizeL1(scores);
  return scores;
}

Result<PagerankResult> EqualOpportunityPagerank(const CsrGraph& graph,
                                                double alpha, double gamma) {
  TransitionConfig config;  // p = 0: conventional transitions.
  D2PR_ASSIGN_OR_RETURN(TransitionMatrix transition,
                        TransitionMatrix::Build(graph, config));
  const std::vector<double> teleport =
      DegreeProportionalTeleport(graph, gamma);
  PagerankOptions options;
  options.alpha = alpha;
  return SolvePagerank(graph, transition, teleport, options);
}

Result<PagerankResult> DegreeBiasedWalkScores(const CsrGraph& graph,
                                              double alpha) {
  D2prOptions options;
  options.p = -1.0;
  options.alpha = alpha;
  return ComputeD2pr(graph, options);
}

}  // namespace d2pr
