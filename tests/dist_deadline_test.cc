// SocketShardChannel deadline semantics over a real TCP connection,
// against a scripted fake shard. The contract under test (channel.h):
// deadline_ms > 0 bounds the WHOLE call — send plus every receive,
// INCLUDING stale-reply drains — so a storm of duplicate replies cannot
// extend one call beyond its budget; 0 means no deadline; a negative
// value is an already-spent budget and fails before anything is sent.
//
// The storm test is the regression pin for the bug where the receive
// timeout was armed once with the full budget and every stale frame
// re-granted it: with a duplicate arriving every few tens of
// milliseconds, one Call could outlive its deadline indefinitely.

#include "dist/channel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace d2pr {
namespace {

int64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Reads one whole frame off `socket` (header + payload), returning
/// false on any error.
bool ReadFrame(Socket& socket) {
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!socket.RecvExact(header_bytes, sizeof(header_bytes)).ok()) {
    return false;
  }
  auto header = DecodeFrameHeader(
      std::span<const uint8_t>(header_bytes, sizeof(header_bytes)));
  if (!header.ok()) return false;
  std::vector<uint8_t> payload(header->payload_len);
  return payload.empty() ||
         socket.RecvExact(payload.data(), payload.size()).ok();
}

ShardFrame TestRequest(uint64_t request_id) {
  ShardFrame request;
  request.type = FrameType::kSweepRequest;
  request.request_id = request_id;
  request.payload = {1, 2, 3, 4};
  return request;
}

TEST(SocketChannelDeadlineTest, NegativeBudgetFailsWithoutSending) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto channel = SocketShardChannel::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(channel.ok());
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.ok());

  const auto start = std::chrono::steady_clock::now();
  auto reply = (*channel)->Call(TestRequest(7), -3);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(reply.status().message().find("already expired"),
            std::string::npos);
  EXPECT_LT(ElapsedMs(start), 1000);  // failed fast, no wait

  // Nothing reached the wire: the server sees silence, not a frame.
  ASSERT_TRUE(server_side->SetRecvTimeout(200).ok());
  uint8_t byte = 0;
  const Status recv = server_side->RecvExact(&byte, 1);
  ASSERT_FALSE(recv.ok());
  EXPECT_EQ(recv.code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketChannelDeadlineTest, SilentServerTimesOutWithinBudget) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto channel = SocketShardChannel::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(channel.ok());
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.ok());

  const auto start = std::chrono::steady_clock::now();
  auto reply = (*channel)->Call(TestRequest(7), 150);
  const int64_t elapsed = ElapsedMs(start);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, 100);   // the budget was actually honored...
  EXPECT_LT(elapsed, 2000);  // ...and not wildly overshot
}

TEST(SocketChannelDeadlineTest, StaleRepliesAreDrainedWithinTheBudget) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto channel = SocketShardChannel::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(channel.ok());

  // The server answers with three stale frames (older request ids — the
  // retried-call leftovers a real stream can hold) before the real
  // reply; the call must drain them silently and still succeed.
  std::thread server([&listener] {
    auto socket = listener->Accept();
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(ReadFrame(*socket));
    const std::vector<uint8_t> payload = {9};
    for (uint64_t stale_id = 1; stale_id <= 3; ++stale_id) {
      const auto frame =
          EncodeFrame(FrameType::kStatus, stale_id, payload);
      ASSERT_TRUE(socket->SendAll(frame.data(), frame.size()).ok());
    }
    const auto real =
        EncodeFrame(FrameType::kSweepResponse, 50, payload);
    ASSERT_TRUE(socket->SendAll(real.data(), real.size()).ok());
  });

  auto reply = (*channel)->Call(TestRequest(50), 5000);
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->request_id, 50u);
  EXPECT_EQ(reply->type, FrameType::kSweepResponse);
}

TEST(SocketChannelDeadlineTest, DuplicateStormCannotExtendTheBudget) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto channel = SocketShardChannel::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(channel.ok());

  // A stale reply every 50 ms, far longer than the 200 ms budget: a
  // channel that re-arms the FULL budget per frame never times out while
  // the storm lasts; one that arms the REMAINING budget returns
  // DeadlineExceeded on schedule.
  constexpr int64_t kBudgetMs = 200;
  std::thread server([&listener] {
    auto socket = listener->Accept();
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(ReadFrame(*socket));
    const std::vector<uint8_t> payload = {9};
    for (uint64_t stale_id = 1; stale_id <= 60; ++stale_id) {
      const auto frame =
          EncodeFrame(FrameType::kStatus, stale_id, payload);
      if (!socket->SendAll(frame.data(), frame.size()).ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  const auto start = std::chrono::steady_clock::now();
  auto reply = (*channel)->Call(TestRequest(1000), kBudgetMs);
  const int64_t elapsed = ElapsedMs(start);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  // The storm runs ~3 s; a fixed channel is out in ~200 ms. Allow double
  // the budget plus scheduling slack — far below what a per-frame
  // re-arm would burn.
  EXPECT_LT(elapsed, 2 * kBudgetMs + 600);

  // Tear the connection down so the storm loop's SendAll fails and the
  // server thread exits promptly.
  channel->reset();
  server.join();
}

TEST(SocketChannelDeadlineTest, ZeroMeansNoDeadline) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto channel = SocketShardChannel::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(channel.ok());

  // The reply takes ~300 ms; with deadline 0 the call waits it out.
  std::thread server([&listener] {
    auto socket = listener->Accept();
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(ReadFrame(*socket));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const std::vector<uint8_t> payload = {9};
    const auto frame = EncodeFrame(FrameType::kSweepResponse, 5, payload);
    ASSERT_TRUE(socket->SendAll(frame.data(), frame.size()).ok());
  });

  auto reply = (*channel)->Call(TestRequest(5), 0);
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->request_id, 5u);
}

TEST(SocketChannelDeadlineTest, FutureRequestIdIsAProtocolError) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto channel = SocketShardChannel::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(channel.ok());

  std::thread server([&listener] {
    auto socket = listener->Accept();
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(ReadFrame(*socket));
    const std::vector<uint8_t> payload = {9};
    const auto frame = EncodeFrame(FrameType::kStatus, 9999, payload);
    ASSERT_TRUE(socket->SendAll(frame.data(), frame.size()).ok());
  });

  auto reply = (*channel)->Call(TestRequest(10), 5000);
  server.join();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace d2pr
