// Seeded randomized property tests for edge-partitioned serving: over
// 50+ random graphs (power-law preferential attachment and bipartite
// member projections, weighted and unweighted) and random request mixes
// (uniform/personalized teleports, mixed p/alpha/beta, all dangling
// policies, power and Gauss-Seidel), the partitioned-subgraph router and
// the block solvers must reproduce the single-engine reference: power
// bit-identically, Gauss-Seidel within 1e-9 — with total probability
// mass 1 and top-k ranking agreement on every response. The router mix
// cycles both slice-construction modes (kFromMatrix and the
// matrix-free kSubgraph path), and the solver-level sweep feeds the
// sliced block solver from both construction paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "core/block_solver.h"
#include "core/gauss_seidel.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "core/transition_slices.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"
#include "graph/partition.h"
#include "linalg/vec_ops.h"
#include "serve/engine_router.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

constexpr int kNumCases = 50;
constexpr int kRequestsPerCase = 6;
constexpr size_t kTopK = 10;
constexpr double kGsTolerance = 1e-9;
constexpr double kMassTolerance = 1e-9;

/// Alternates between a power-law (preferential attachment) graph and a
/// bipartite member-member projection; every fourth case is weighted.
Result<CsrGraph> FuzzGraph(int case_id) {
  const auto seed = static_cast<uint64_t>(case_id);
  if (case_id % 2 == 0) {
    Rng rng(4000 + seed);
    return BarabasiAlbert(
        static_cast<NodeId>(100 + (case_id * 17) % 140),
        2 + case_id % 3, &rng);
  }
  BipartiteWorldConfig config;
  config.num_members = static_cast<NodeId>(80 + (case_id * 11) % 70);
  config.num_venues = static_cast<NodeId>(25 + case_id % 25);
  config.venue_size_max = 12;
  config.seed = 5000 + seed;
  auto world = GenerateBipartiteWorld(config);
  if (!world.ok()) return world.status();
  ProjectionConfig projection;
  projection.weighted = case_id % 4 == 1;
  return ProjectMembers(*world, projection);
}

RankRequest RandomRequest(Rng& rng, const CsrGraph& graph) {
  RankRequest request;
  request.p = rng.Uniform(-1.5, 2.0);
  request.alpha = rng.Uniform(0.5, 0.9);
  request.beta = graph.weighted() ? rng.Uniform() : 0.0;
  request.method =
      rng.Bernoulli(0.5) ? SolverMethod::kPower : SolverMethod::kGaussSeidel;
  const double policy_draw = rng.Uniform();
  request.dangling = policy_draw < 0.6 ? DanglingPolicy::kTeleport
                     : policy_draw < 0.8 ? DanglingPolicy::kSelfLoop
                                         : DanglingPolicy::kRenormalize;
  if (request.method == SolverMethod::kGaussSeidel &&
      request.dangling == DanglingPolicy::kRenormalize) {
    // Block Gauss-Seidel rejects kRenormalize by contract (the
    // renormalized fixed point is sweep-order dependent; see
    // core/block_solver.h) — the rejection itself is covered by the
    // parity suite, so the fuzz mix keeps these requests solvable.
    request.dangling = DanglingPolicy::kTeleport;
  }
  request.tolerance = 1e-11;
  request.max_iterations = 5000;  // always converge: parity needs it
  if (rng.Bernoulli(0.5)) {
    const auto num_seeds = static_cast<size_t>(rng.UniformInt(1, 5));
    while (request.seeds.size() < num_seeds) {
      const auto seed = static_cast<NodeId>(
          rng.UniformInt(0, graph.num_nodes() - 1));
      if (std::find(request.seeds.begin(), request.seeds.end(), seed) ==
          request.seeds.end()) {
        request.seeds.push_back(seed);
      }
    }
  }
  return request;
}

/// Top-k agreement modulo near-ties: position j may differ only between
/// nodes whose reference scores are within tolerance of each other.
void ExpectTopKAgreement(const std::vector<double>& reference,
                         const std::vector<double>& routed) {
  const std::vector<NodeId> expected = TopK(reference, kTopK);
  const std::vector<NodeId> actual = TopK(routed, kTopK);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t j = 0; j < expected.size(); ++j) {
    if (expected[j] == actual[j]) continue;
    const double score_gap =
        std::abs(reference[static_cast<size_t>(expected[j])] -
                 reference[static_cast<size_t>(actual[j])]);
    EXPECT_LE(score_gap, kGsTolerance)
        << "top-" << j << " disagrees beyond a near-tie: node "
        << expected[j] << " vs " << actual[j];
  }
}

TEST(PartitionFuzzTest, RouterMatchesSingleEngineOnRandomMixes) {
  int power_responses = 0;
  int gs_responses = 0;
  int boundary_heavy_cases = 0;
  for (int case_id = 0; case_id < kNumCases; ++case_id) {
    SCOPED_TRACE("case " + std::to_string(case_id));
    auto graph = FuzzGraph(case_id);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    ASSERT_GT(graph->num_nodes(), 0);

    Rng rng(11000 + static_cast<uint64_t>(case_id));
    std::vector<RankRequest> requests;
    for (int i = 0; i < kRequestsPerCase; ++i) {
      requests.push_back(RandomRequest(rng, *graph));
    }

    D2prEngine reference = D2prEngine::Borrowing(*graph);
    auto sequential = reference.RankBatch(requests);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    const size_t num_shards = 1 + static_cast<size_t>(case_id % 5);
    const PartitionScheme scheme = case_id % 2 == 0
                                       ? PartitionScheme::kRange
                                       : PartitionScheme::kHash;
    // Cycle the slice-construction mode independently of the scheme so
    // every (scheme, build) pair recurs across the 50 cases.
    const SliceBuild slice_build = (case_id / 2) % 2 == 0
                                       ? SliceBuild::kFromMatrix
                                       : SliceBuild::kSubgraph;
    EngineRouter router = EngineRouter::Borrowing(
        *graph, {.num_shards = num_shards,
                 .policy = RoutingPolicy::kPartitionedSubgraph,
                 .partition_scheme = scheme,
                 .partition_slice_build = slice_build});
    if (router.partition().BoundaryFraction() > 0.25) ++boundary_heavy_cases;

    auto routed = router.RankBatch(requests);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ASSERT_EQ(routed->size(), sequential->size());

    for (size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      const RankResponse& expected = (*sequential)[i];
      const RankResponse& actual = (*routed)[i];
      ASSERT_TRUE(expected.converged);
      ASSERT_TRUE(actual.converged);
      EXPECT_TRUE(actual.served_partitioned);
      ASSERT_EQ(actual.scores.size(), expected.scores.size());

      // Mass conservation: every response is a probability distribution.
      EXPECT_NEAR(Sum(actual.scores), 1.0, kMassTolerance);

      if (requests[i].method == SolverMethod::kPower) {
        // Bit-identical: scores, iterations, residual.
        EXPECT_EQ(actual.scores, expected.scores);
        EXPECT_EQ(actual.iterations, expected.iterations);
        EXPECT_EQ(actual.residual, expected.residual);
        ++power_responses;
      } else {
        double max_diff = 0.0;
        for (size_t n = 0; n < actual.scores.size(); ++n) {
          max_diff = std::max(
              max_diff, std::abs(actual.scores[n] - expected.scores[n]));
        }
        EXPECT_LE(max_diff, kGsTolerance);
        ++gs_responses;
      }
      ExpectTopKAgreement(expected.scores, actual.scores);
    }

    if (slice_build == SliceBuild::kSubgraph) {
      // Matrix-free by construction: across the whole mix the router
      // never built (or loaded) a whole-graph transition matrix.
      EXPECT_EQ(router.partition_transition_builds(), 0);
      EXPECT_EQ(router.partition_transition_store_loads(), 0);
      EXPECT_GT(router.partition_slice_builds(), 0);
    }
  }
  // The property is only meaningful if the mix exercised both solvers
  // heavily and the partitions actually cut the graphs.
  EXPECT_GT(power_responses, 80);
  EXPECT_GT(gs_responses, 80);
  EXPECT_GT(boundary_heavy_cases, 20);
}

TEST(PartitionFuzzTest, SolverLevelPowerBitParityOnRandomGraphs) {
  // Below the router: the block power solver against SolvePagerank
  // directly, cycling shard counts {1, 2, 4, 8} and both schemes over
  // the same seeded graph family.
  for (int case_id = 0; case_id < kNumCases; ++case_id) {
    SCOPED_TRACE("case " + std::to_string(case_id));
    auto graph = FuzzGraph(case_id);
    ASSERT_TRUE(graph.ok());

    Rng rng(17000 + static_cast<uint64_t>(case_id));
    TransitionConfig config;
    config.p = rng.Uniform(-1.5, 2.0);
    config.beta = graph->weighted() ? rng.Uniform() : 0.0;
    auto transition = TransitionMatrix::Build(*graph, config);
    ASSERT_TRUE(transition.ok());

    PagerankOptions options;
    options.alpha = rng.Uniform(0.5, 0.9);
    options.tolerance = 1e-11;
    options.max_iterations = 5000;

    const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
    auto reference = SolvePagerank(*graph, *transition, teleport, options);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(reference->converged);

    const size_t shards[] = {1, 2, 4, 8};
    const size_t num_shards = shards[case_id % 4];
    const PartitionScheme scheme = case_id % 2 == 0
                                       ? PartitionScheme::kHash
                                       : PartitionScheme::kRange;
    auto partition = GraphPartition::Build(
        *graph, {.scheme = scheme, .num_shards = num_shards});
    ASSERT_TRUE(partition.ok());
    auto block =
        SolvePagerankPartitioned(*transition, *partition, teleport, options);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(block->scores, reference->scores);
    EXPECT_EQ(block->iterations, reference->iterations);
    EXPECT_EQ(block->residual, reference->residual);

    // The sliced solver inherits the same contract, from either slice
    // construction path (permutation-of-the-matrix and matrix-free
    // subgraph builds are themselves bit-identical, so one solve per
    // path proves the whole chain).
    auto from_matrix = BuildTransitionSlices(*partition, *transition);
    ASSERT_TRUE(from_matrix.ok());
    auto local = BuildTransitionSlicesLocal(*graph, *partition, config);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(local->in_probs, from_matrix->in_probs);
    for (const TransitionSlices* slices : {&*from_matrix, &*local}) {
      auto sliced =
          SolvePagerankPartitioned(*slices, *partition, teleport, options);
      ASSERT_TRUE(sliced.ok());
      EXPECT_EQ(sliced->scores, reference->scores);
      EXPECT_EQ(sliced->iterations, reference->iterations);
      EXPECT_EQ(sliced->residual, reference->residual);
    }
  }
}

}  // namespace
}  // namespace d2pr
