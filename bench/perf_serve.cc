// Batch-throughput benchmarks for the serving runtime: what the worker
// pool buys over single-threaded batch execution, and what the score
// cache buys at different hit ratios. Future serving PRs regress against
// these QPS baselines.

#include <benchmark/benchmark.h>

#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "serve/serving_runtime.h"

namespace d2pr {
namespace {

constexpr NodeId kGraphNodes = 20000;
constexpr int kBatchSize = 64;

CsrGraph MakeGraph() {
  Rng rng(42);
  auto graph = BarabasiAlbert(kGraphNodes, 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

RankRequest PersonalizedQuery(NodeId seed) {
  RankRequest request;
  request.p = 0.5;
  request.method = SolverMethod::kForwardPush;
  request.push_epsilon = 1e-6;
  request.seeds = {seed};
  return request;
}

// Thread-count sweep over a batch of independent personalized queries.
// Arg: worker threads. Throughput at 1 thread is the sequential baseline
// the ISSUE acceptance compares 4 threads against.
void BM_ServeBatchThreads(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  D2prEngine engine = D2prEngine::Borrowing(graph);
  ServingOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.score_cache_capacity = 0;  // measure solves, not memo hits
  ServingRuntime runtime = ServingRuntime::Borrowing(engine, options);

  std::vector<RankRequest> batch;
  for (int i = 0; i < kBatchSize; ++i) {
    batch.push_back(PersonalizedQuery(static_cast<NodeId>(i * 17 % kGraphNodes)));
  }
  // Build the shared transition once so the steady state is measured.
  D2PR_CHECK(runtime.RankBatch(batch).ok());

  for (auto _ : state) {
    auto responses = runtime.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
// UseRealTime: throughput of a worker pool is wall-clock batches/sec —
// the default (main-thread CPU time) would not count the workers at all.
BENCHMARK(BM_ServeBatchThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Global (power-iteration) queries parallelize too: distinct p values so
// every request solves, sharing nothing but the graph.
void BM_ServeBatchGlobalThreads(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  D2prEngine engine = D2prEngine::Borrowing(graph);
  ServingOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.score_cache_capacity = 0;
  ServingRuntime runtime = ServingRuntime::Borrowing(engine, options);

  std::vector<RankRequest> batch;
  for (int i = 0; i < 16; ++i) {
    RankRequest request;
    request.p = -2.0 + 0.25 * i;  // 16 distinct cached transitions
    request.tolerance = 1e-9;
    batch.push_back(request);
  }
  D2PR_CHECK(runtime.RankBatch(batch).ok());

  for (auto _ : state) {
    auto responses = runtime.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_ServeBatchGlobalThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Score-cache hit-ratio sweep at a fixed 4-worker pool. Arg: percent of
// the batch that repeats one hot query (steady-state cache hits); the
// rest use a fresh seed every iteration (guaranteed misses).
void BM_ServeScoreCacheHitRatio(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  D2prEngine engine = D2prEngine::Borrowing(graph);
  ServingOptions options;
  options.num_threads = 4;
  options.score_cache_capacity = 8;  // hot entry stays, misses churn
  ServingRuntime runtime = ServingRuntime::Borrowing(engine, options);

  const int hit_percent = static_cast<int>(state.range(0));
  const int hot = kBatchSize * hit_percent / 100;
  NodeId fresh_seed = 0;
  // Prime the hot query and the shared transition.
  D2PR_CHECK(runtime.Rank(PersonalizedQuery(0)).ok());

  for (auto _ : state) {
    std::vector<RankRequest> batch;
    batch.reserve(kBatchSize);
    for (int i = 0; i < hot; ++i) batch.push_back(PersonalizedQuery(0));
    for (int i = hot; i < kBatchSize; ++i) {
      fresh_seed = (fresh_seed + 1) % kGraphNodes;
      batch.push_back(PersonalizedQuery(fresh_seed));
    }
    auto responses = runtime.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
BENCHMARK(BM_ServeScoreCacheHitRatio)->Arg(0)->Arg(50)->Arg(100)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
