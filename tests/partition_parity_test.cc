// Partition-parity proof: block solves over edge-partitioned graphs must
// reproduce the single-graph reference solvers.
//
// The contract (see core/block_solver.h):
//   * block power iteration is BIT-IDENTICAL to SolvePagerank — scores,
//     iteration counts, and residuals — for every partition scheme and
//     shard count, every dangling policy, uniform and personalized
//     teleports, weighted and unweighted graphs;
//   * block Gauss-Seidel (Gauss-Seidel within a shard, Jacobi across
//     shards) agrees with SolvePagerankGaussSeidel within 1e-9 at
//     tolerance 1e-11.
// The same parity is then asserted one layer up, through EngineRouter's
// partitioned-subgraph mode against a whole-graph D2prEngine, where the
// serving surface (validation, seeded teleports, diagnostics) must also
// behave identically.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "core/block_solver.h"
#include "core/gauss_seidel.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "graph/partition.h"
#include "linalg/vec_ops.h"
#include "serve/engine_router.h"

namespace d2pr {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 8};
constexpr PartitionScheme kSchemes[] = {PartitionScheme::kRange,
                                        PartitionScheme::kHash};
constexpr double kGsTolerance = 1e-9;

/// Undirected, unweighted power-law graph (the paper's main regime).
CsrGraph UnweightedGraph() {
  Rng rng(42);
  auto graph = BarabasiAlbert(61, 2, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

/// Directed, weighted graph with dangling nodes — the regime where
/// dangling policies and the beta blend actually bite.
CsrGraph WeightedDirectedGraph() {
  Rng rng(7);
  GraphBuilder builder(40, GraphKind::kDirected, /*weighted=*/true);
  for (NodeId v = 0; v < 40; ++v) {
    // Nodes 0..34 get out-arcs; 35..39 stay dangling.
    if (v >= 35) continue;
    const int degree = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int j = 0; j < degree; ++j) {
      const auto target = static_cast<NodeId>(rng.UniformInt(0, 39));
      if (target == v) continue;
      EXPECT_TRUE(
          builder.AddEdge(v, target, 0.5 + rng.Uniform() * 3.0).ok());
    }
  }
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

// ---------------------------------------------------------------------
// Solver-level parity.
// ---------------------------------------------------------------------

TEST(PartitionParityTest, PowerIsBitIdenticalForEverySchemeAndShardCount) {
  const CsrGraph unweighted = UnweightedGraph();
  const CsrGraph weighted = WeightedDirectedGraph();
  for (const CsrGraph* graph : {&unweighted, &weighted}) {
    for (double p : {0.0, 0.7, -0.5}) {
      TransitionConfig config;
      config.p = p;
      config.beta = graph->weighted() ? 0.3 : 0.0;
      auto transition = TransitionMatrix::Build(*graph, config);
      ASSERT_TRUE(transition.ok());

      for (DanglingPolicy policy :
           {DanglingPolicy::kTeleport, DanglingPolicy::kSelfLoop,
            DanglingPolicy::kRenormalize}) {
        PagerankOptions options;
        options.alpha = 0.85;
        options.tolerance = 1e-12;
        options.max_iterations = 5000;
        options.dangling = policy;

        const std::vector<double> uniform =
            UniformTeleport(graph->num_nodes());
        auto seeded = SeededTeleport(graph->num_nodes(),
                                     std::vector<NodeId>{1, 5, 17});
        ASSERT_TRUE(seeded.ok());
        const std::vector<double>& personalized = *seeded;

        for (const std::vector<double>* teleport :
             {&uniform, &personalized}) {
          auto reference =
              SolvePagerank(*graph, *transition, *teleport, options);
          ASSERT_TRUE(reference.ok()) << reference.status().ToString();
          ASSERT_TRUE(reference->converged);

          for (PartitionScheme scheme : kSchemes) {
            for (size_t shards : kShardCounts) {
              SCOPED_TRACE(std::string(graph->weighted() ? "weighted"
                                                         : "unweighted") +
                           " p=" + std::to_string(p) + " policy=" +
                           std::to_string(static_cast<int>(policy)) + " " +
                           PartitionSchemeName(scheme) + " x" +
                           std::to_string(shards) +
                           (teleport == &uniform ? " uniform" : " seeded"));
              auto partition = GraphPartition::Build(
                  *graph, {.scheme = scheme, .num_shards = shards});
              ASSERT_TRUE(partition.ok());
              auto block = SolvePagerankPartitioned(*transition, *partition,
                                                    *teleport, options);
              ASSERT_TRUE(block.ok()) << block.status().ToString();
              // Bitwise: vector operator== compares every double exactly.
              EXPECT_EQ(block->scores, reference->scores);
              EXPECT_EQ(block->iterations, reference->iterations);
              EXPECT_EQ(block->residual, reference->residual);
              EXPECT_EQ(block->converged, reference->converged);
            }
          }
        }
      }
    }
  }
}

TEST(PartitionParityTest, GaussSeidelAgreesWithinTolerance) {
  const CsrGraph unweighted = UnweightedGraph();
  const CsrGraph weighted = WeightedDirectedGraph();
  for (const CsrGraph* graph : {&unweighted, &weighted}) {
    TransitionConfig config;
    config.p = 0.6;
    auto transition = TransitionMatrix::Build(*graph, config);
    ASSERT_TRUE(transition.ok());

    PagerankOptions options;
    options.alpha = 0.85;
    options.tolerance = 1e-11;
    options.max_iterations = 5000;

    const std::vector<double> uniform = UniformTeleport(graph->num_nodes());
    auto seeded =
        SeededTeleport(graph->num_nodes(), std::vector<NodeId>{2, 9});
    ASSERT_TRUE(seeded.ok());
    const std::vector<double>& personalized = *seeded;

    for (const std::vector<double>* teleport : {&uniform, &personalized}) {
      auto reference =
          SolvePagerankGaussSeidel(*graph, *transition, *teleport, options);
      ASSERT_TRUE(reference.ok());
      ASSERT_TRUE(reference->converged);

      for (PartitionScheme scheme : kSchemes) {
        for (size_t shards : kShardCounts) {
          SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x" +
                       std::to_string(shards));
          auto partition = GraphPartition::Build(
              *graph, {.scheme = scheme, .num_shards = shards});
          ASSERT_TRUE(partition.ok());
          auto block = SolveGaussSeidelPartitioned(*transition, *partition,
                                                   *teleport, options);
          ASSERT_TRUE(block.ok());
          EXPECT_TRUE(block->converged);
          EXPECT_LE(MaxAbsDiff(block->scores, reference->scores),
                    kGsTolerance);
          EXPECT_NEAR(Sum(block->scores), 1.0, 1e-12);
        }
      }
    }
  }
}

TEST(PartitionParityTest, SingleShardGaussSeidelEqualsBlockFixedPoint) {
  // With one shard there is no frozen remote data, yet the block sweep is
  // still not the reference sweep order's equal only for multi-shard
  // runs; for one shard the in-shard Gauss-Seidel order IS the global
  // order, so the paths coincide exactly.
  const CsrGraph graph = UnweightedGraph();
  auto transition = TransitionMatrix::Build(graph, {});
  ASSERT_TRUE(transition.ok());
  PagerankOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 5000;
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  auto reference =
      SolvePagerankGaussSeidel(graph, *transition, teleport, options);
  ASSERT_TRUE(reference.ok());
  auto partition = GraphPartition::Build(graph, {.num_shards = 1});
  ASSERT_TRUE(partition.ok());
  auto block =
      SolveGaussSeidelPartitioned(*transition, *partition, teleport, options);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->scores, reference->scores);
  EXPECT_EQ(block->iterations, reference->iterations);
}

TEST(PartitionParityTest, BlockSolversValidateLikeTheReference) {
  const CsrGraph graph = UnweightedGraph();
  auto transition = TransitionMatrix::Build(graph, {});
  ASSERT_TRUE(transition.ok());
  auto partition = GraphPartition::Build(graph, {.num_shards = 2});
  ASSERT_TRUE(partition.ok());
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());

  PagerankOptions bad_alpha;
  bad_alpha.alpha = 1.0;
  EXPECT_EQ(SolvePagerankPartitioned(*transition, *partition, teleport,
                                     bad_alpha)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  PagerankOptions bad_tolerance;
  bad_tolerance.tolerance = 0.0;
  EXPECT_EQ(SolveGaussSeidelPartitioned(*transition, *partition, teleport,
                                        bad_tolerance)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Teleport of the wrong size, and a partition of the wrong graph.
  std::vector<double> short_teleport(3, 1.0 / 3.0);
  EXPECT_EQ(SolvePagerankPartitioned(*transition, *partition, short_teleport,
                                     PagerankOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  const CsrGraph other = WeightedDirectedGraph();
  auto other_partition = GraphPartition::Build(other, {.num_shards = 2});
  ASSERT_TRUE(other_partition.ok());
  EXPECT_EQ(SolvePagerankPartitioned(*transition, *other_partition, teleport,
                                     PagerankOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionParityTest, EmptyGraphSolvesTrivially) {
  auto transition = TransitionMatrix::Build(CsrGraph(), {});
  ASSERT_TRUE(transition.ok());
  auto partition = GraphPartition::Build(CsrGraph(), {.num_shards = 4});
  ASSERT_TRUE(partition.ok());
  auto solved = SolvePagerankPartitioned(*transition, *partition, {},
                                         PagerankOptions{});
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved->converged);
  EXPECT_TRUE(solved->scores.empty());
}

// ---------------------------------------------------------------------
// Router-level parity: the partitioned-subgraph serving mode.
// ---------------------------------------------------------------------

std::vector<RankRequest> ServingMix(const CsrGraph& graph) {
  std::vector<RankRequest> requests;
  for (SolverMethod method :
       {SolverMethod::kPower, SolverMethod::kGaussSeidel}) {
    RankRequest uniform;
    uniform.p = 0.8;
    uniform.method = method;
    uniform.tolerance = 1e-11;
    uniform.max_iterations = 5000;
    requests.push_back(uniform);

    RankRequest personalized = uniform;
    personalized.p = -0.4;
    personalized.alpha = 0.7;
    personalized.seeds = {0, graph.num_nodes() / 2,
                          static_cast<NodeId>(graph.num_nodes() - 1)};
    requests.push_back(personalized);

    if (graph.weighted()) {
      RankRequest blended = uniform;
      blended.beta = 0.4;
      requests.push_back(blended);
    }
  }
  // Repeat the first request: its transition must come back as a cache
  // hit, matching the single-engine reference's diagnostic.
  requests.push_back(requests.front());
  return requests;
}

TEST(PartitionParityTest, RouterMatchesSingleEngineReference) {
  const CsrGraph unweighted = UnweightedGraph();
  const CsrGraph weighted = WeightedDirectedGraph();
  for (const CsrGraph* graph : {&unweighted, &weighted}) {
    const std::vector<RankRequest> requests = ServingMix(*graph);
    D2prEngine reference = D2prEngine::Borrowing(*graph);
    auto sequential = reference.RankBatch(requests);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    for (PartitionScheme scheme : kSchemes) {
      for (size_t shards : kShardCounts) {
       for (SliceBuild slice_build :
            {SliceBuild::kFromMatrix, SliceBuild::kSubgraph}) {
        SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x" +
                     std::to_string(shards) + " slices=" +
                     SliceBuildName(slice_build));
        EngineRouter router = EngineRouter::Borrowing(
            *graph, {.num_shards = shards,
                     .policy = RoutingPolicy::kPartitionedSubgraph,
                     .partition_scheme = scheme,
                     .partition_slice_build = slice_build});
        ASSERT_TRUE(router.partitioned_subgraph());
        EXPECT_EQ(router.num_shards(), shards);
        EXPECT_EQ(router.partition().scheme(), scheme);

        auto routed = router.RankBatch(requests);
        ASSERT_TRUE(routed.ok()) << routed.status().ToString();
        ASSERT_EQ(routed->size(), sequential->size());
        for (size_t i = 0; i < requests.size(); ++i) {
          SCOPED_TRACE("request " + std::to_string(i));
          const RankResponse& expected = (*sequential)[i];
          const RankResponse& actual = (*routed)[i];
          EXPECT_TRUE(actual.served_partitioned);
          EXPECT_FALSE(expected.served_partitioned);
          EXPECT_EQ(actual.converged, expected.converged);
          // One shared transition cache serves the block solves, so the
          // hit pattern matches the sequential reference exactly.
          EXPECT_EQ(actual.transition_cache_hit,
                    expected.transition_cache_hit);
          if (requests[i].method == SolverMethod::kPower) {
            EXPECT_EQ(actual.scores, expected.scores);
            EXPECT_EQ(actual.iterations, expected.iterations);
            EXPECT_EQ(actual.residual, expected.residual);
          } else {
            EXPECT_LE(MaxAbsDiff(actual.scores, expected.scores),
                      kGsTolerance);
          }
        }
        if (slice_build == SliceBuild::kSubgraph) {
          // The matrix-free mode served the same bits without ever
          // building (or store-loading) a whole-graph matrix.
          EXPECT_EQ(router.partition_transition_builds(), 0);
          EXPECT_EQ(router.partition_transition_store_loads(), 0);
          EXPECT_GT(router.partition_slice_builds(), 0);
        }
       }
      }
    }
  }
}

TEST(PartitionParityTest, RouterAsyncMatchesSyncPath) {
  // RankAsync solves inline on a pool worker (no nested fan-out); the
  // result must still be bit-identical to the pooled sync path.
  const CsrGraph graph = UnweightedGraph();
  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = 4,
              .policy = RoutingPolicy::kPartitionedSubgraph});
  RankRequest request;
  request.p = 0.5;
  request.tolerance = 1e-11;
  request.max_iterations = 5000;
  auto sync = router.Rank(request);
  ASSERT_TRUE(sync.ok());
  auto future = router.RankAsync(request);
  auto async = future.get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async->scores, sync->scores);
  EXPECT_EQ(async->iterations, sync->iterations);
  EXPECT_TRUE(async->served_partitioned);
}

TEST(PartitionParityTest, GaussSeidelRenormalizeIsRejectedNotApproximated) {
  // The renormalized Gauss-Seidel fixed point depends on the sweep order
  // once dangling mass is dropped, so a block sweep cannot reproduce the
  // single-graph reference; both the solver and the serving mode must
  // fail loudly rather than serve an O(1e-3)-off solution.
  const CsrGraph graph = WeightedDirectedGraph();  // has dangling nodes
  auto transition = TransitionMatrix::Build(graph, {});
  ASSERT_TRUE(transition.ok());
  auto partition = GraphPartition::Build(graph, {.num_shards = 2});
  ASSERT_TRUE(partition.ok());
  PagerankOptions options;
  options.dangling = DanglingPolicy::kRenormalize;
  auto solved = SolveGaussSeidelPartitioned(
      *transition, *partition, UniformTeleport(graph.num_nodes()), options);
  EXPECT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kInvalidArgument);

  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = 2,
              .policy = RoutingPolicy::kPartitionedSubgraph});
  RankRequest request;
  request.method = SolverMethod::kGaussSeidel;
  request.dangling = DanglingPolicy::kRenormalize;
  auto response = router.Rank(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  // No transition build was paid for the rejected request.
  EXPECT_EQ(router.partition_transition_builds(), 0);

  // Power iteration under kRenormalize stays fully (bitwise) supported.
  request.method = SolverMethod::kPower;
  auto power = router.Rank(request);
  ASSERT_TRUE(power.ok());
  D2prEngine engine = D2prEngine::Borrowing(graph);
  auto reference = engine.Rank(request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(power->scores, reference->scores);
}

TEST(PartitionParityTest, RouterRejectsForwardPushCleanly) {
  const CsrGraph graph = UnweightedGraph();
  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = 2,
              .policy = RoutingPolicy::kPartitionedSubgraph});
  RankRequest request;
  request.method = SolverMethod::kForwardPush;
  request.seeds = {3};
  auto response = router.Rank(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionParityTest, RouterValidatesLikeTheEngine) {
  const CsrGraph graph = UnweightedGraph();
  D2prEngine engine = D2prEngine::Borrowing(graph);
  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = 2,
              .policy = RoutingPolicy::kPartitionedSubgraph});

  std::vector<RankRequest> bad_requests;
  RankRequest bad_alpha;
  bad_alpha.alpha = 1.5;
  bad_requests.push_back(bad_alpha);
  RankRequest bad_beta;
  bad_beta.beta = 2.0;
  bad_requests.push_back(bad_beta);
  RankRequest bad_seed;
  bad_seed.seeds = {graph.num_nodes() + 5};
  bad_requests.push_back(bad_seed);
  RankRequest bad_tolerance;
  bad_tolerance.tolerance = -1.0;
  bad_requests.push_back(bad_tolerance);

  for (size_t i = 0; i < bad_requests.size(); ++i) {
    SCOPED_TRACE("bad request " + std::to_string(i));
    auto from_engine = engine.Rank(bad_requests[i]);
    auto from_router = router.Rank(bad_requests[i]);
    ASSERT_FALSE(from_engine.ok());
    ASSERT_FALSE(from_router.ok());
    EXPECT_EQ(from_router.status().code(), from_engine.status().code());
    EXPECT_EQ(from_router.status().ToString(),
              from_engine.status().ToString());
  }
}

TEST(PartitionParityTest, RouterWarmTagsSolveColdButSucceed) {
  const CsrGraph graph = UnweightedGraph();
  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = 2,
              .policy = RoutingPolicy::kPartitionedSubgraph});
  RankRequest tagged;
  tagged.p = 0.3;
  tagged.warm_start_tag = "sweep";
  auto first = router.Rank(tagged);
  ASSERT_TRUE(first.ok());
  auto second = router.Rank(tagged);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->warm_start_hit);
  // Cold both times: identical solves.
  EXPECT_EQ(second->scores, first->scores);
  EXPECT_EQ(second->iterations, first->iterations);
}

TEST(PartitionParityTest, RouterHonorsPersistentTransitionStore) {
  // --cache-dir composes with partitioned serving: the first router
  // builds and spills the shared matrix; a restarted router maps it back
  // (zero builds) with bit-identical scores.
  const std::string dir = testing::TempDir() + "/d2pr_partition_store";
  std::filesystem::remove_all(dir);
  const CsrGraph graph = UnweightedGraph();
  RankRequest request;
  request.p = 0.9;
  request.tolerance = 1e-11;
  request.max_iterations = 5000;

  RouterOptions options;
  options.num_shards = 4;
  options.policy = RoutingPolicy::kPartitionedSubgraph;
  options.engine_options.cache_dir = dir;

  std::vector<double> first_scores;
  {
    EngineRouter router = EngineRouter::Borrowing(graph, options);
    auto response = router.Rank(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->transition_store_hit);
    EXPECT_EQ(router.partition_transition_builds(), 1);
    EXPECT_EQ(router.partition_transition_store_saves(), 1);
    first_scores = response->scores;
  }
  {
    EngineRouter restarted = EngineRouter::Borrowing(graph, options);
    auto response = restarted.Rank(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->transition_store_hit);
    EXPECT_EQ(restarted.partition_transition_builds(), 0);
    EXPECT_EQ(restarted.partition_transition_store_loads(), 1);
    EXPECT_EQ(response->scores, first_scores);
  }
  std::filesystem::remove_all(dir);
}

TEST(PartitionParityTest, RouterTransitionAccountingIsShared) {
  const CsrGraph graph = UnweightedGraph();
  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = 4,
              .policy = RoutingPolicy::kPartitionedSubgraph});
  RankRequest request;
  request.p = 1.1;
  ASSERT_TRUE(router.Rank(request).ok());
  ASSERT_TRUE(router.Rank(request).ok());
  // One build for the key, shared by all four shards' sweeps; the second
  // request is a pure cache hit.
  EXPECT_EQ(router.partition_transition_builds(), 1);
  EXPECT_EQ(router.partition_transition_cache_hits(), 1);
}

}  // namespace
}  // namespace d2pr
