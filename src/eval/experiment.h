// Experiment runners shared by the table/figure reproduction benches.
//
// Every figure in the paper is some slice of the same computation: sweep p
// (and possibly alpha or beta), compute D2PR, and report Spearman's rank
// correlation between the scores and the application-specific node
// significance. These helpers centralize that loop.

#ifndef D2PR_EVAL_EXPERIMENT_H_
#define D2PR_EVAL_EXPERIMENT_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/d2pr.h"
#include "datagen/dataset_registry.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief One evaluated point of a correlation sweep.
struct CorrelationPoint {
  double p = 0.0;            ///< De-coupling weight evaluated.
  double correlation = 0.0;  ///< Spearman(D2PR scores, significance).
  int iterations = 0;
  bool converged = false;
};

/// \brief Runs D2PR for each p in `p_grid` and correlates scores with
/// `significance` (which must have one entry per node).
Result<std::vector<CorrelationPoint>> CorrelationPSweep(
    const CsrGraph& graph, std::span<const double> significance,
    const std::vector<double>& p_grid, const D2prOptions& base = {});

/// \brief A full correlation surface over (outer parameter, p).
struct CorrelationSurface {
  /// Values of the outer parameter (alpha for Figs 6-8, beta for 9-11).
  std::vector<double> outer_values;
  /// series[k][i] is the point at outer_values[k], p_grid[i].
  std::vector<std::vector<CorrelationPoint>> series;
};

/// \brief Sweeps alpha × p (the paper's Figures 6-8 layout).
Result<CorrelationSurface> CorrelationAlphaPSweep(
    const CsrGraph& graph, std::span<const double> significance,
    const std::vector<double>& alpha_values,
    const std::vector<double>& p_grid, const D2prOptions& base = {});

/// \brief Sweeps beta × p on a weighted graph (Figures 9-11 layout).
Result<CorrelationSurface> CorrelationBetaPSweep(
    const CsrGraph& graph, std::span<const double> significance,
    const std::vector<double>& beta_values,
    const std::vector<double>& p_grid, const D2prOptions& base = {});

/// \brief Argmax of a correlation series; ties go to the smallest |p|
/// (prefer the least-intrusive de-coupling).
CorrelationPoint BestPoint(const std::vector<CorrelationPoint>& series);

/// \brief The point at p = 0 (conventional PageRank) in a series; CHECKs
/// that the grid contains 0.
CorrelationPoint ConventionalPoint(
    const std::vector<CorrelationPoint>& series);

/// \brief Default solver settings used by the reproduction benches: the
/// paper's alpha = 0.85 with a tolerance loose enough for sweep workloads.
D2prOptions BenchOptions();

}  // namespace d2pr

#endif  // D2PR_EVAL_EXPERIMENT_H_
