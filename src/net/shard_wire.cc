#include "net/shard_wire.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "graph/types.h"
#include "net/wire_internal.h"

namespace d2pr {

namespace {

using wire_internal::Cursor;
using wire_internal::Truncated;

// Node-id lists travel as u32 counts + u32 ids; score slices as u32
// counts + f64 values. Counts are checked against the bytes actually
// remaining BEFORE any reserve, so a lying count is an InvalidArgument,
// never an allocation.

void AppendNodeList(std::vector<uint8_t>& out, const std::vector<NodeId>& ids) {
  AppendU32(out, static_cast<uint32_t>(ids.size()));
  for (NodeId id : ids) AppendU32(out, static_cast<uint32_t>(id));
}

Status ReadNodeList(Cursor& cursor, const char* what,
                    std::vector<NodeId>* ids) {
  uint32_t count = 0;
  if (!cursor.ReadU32(&count)) return Truncated(what);
  if (count > cursor.remaining() / 4) {
    return Status::InvalidArgument(
        StrCat(what, " count ", count, " exceeds payload"));
  }
  ids->clear();
  ids->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    if (!cursor.ReadU32(&id)) return Truncated(what);
    ids->push_back(static_cast<NodeId>(id));
  }
  return Status::OK();
}

void AppendScoreList(std::vector<uint8_t>& out,
                     const std::vector<double>& values) {
  AppendU32(out, static_cast<uint32_t>(values.size()));
  for (double value : values) AppendF64(out, value);
}

Status ReadScoreList(Cursor& cursor, const char* what,
                     std::vector<double>* values) {
  uint32_t count = 0;
  if (!cursor.ReadU32(&count)) return Truncated(what);
  if (count > cursor.remaining() / 8) {
    return Status::InvalidArgument(
        StrCat(what, " count ", count, " exceeds payload"));
  }
  values->clear();
  values->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double value = 0.0;
    if (!cursor.ReadF64(&value)) return Truncated(what);
    values->push_back(value);
  }
  return Status::OK();
}

Status RejectTrailing(const Cursor& cursor, const char* what) {
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrCat(what, " payload has ", cursor.remaining(), " trailing bytes"));
  }
  return Status::OK();
}

}  // namespace

// --- ShardHandshake ---

std::vector<uint8_t> EncodeShardHandshake(const ShardHandshake& handshake) {
  std::vector<uint8_t> out;
  AppendU32(out, handshake.shard_id);
  AppendU32(out, handshake.num_shards);
  AppendU32(out, static_cast<uint32_t>(handshake.scheme));
  AppendU32(out, static_cast<uint32_t>(handshake.slice_build));
  AppendU64(out, handshake.graph_fingerprint);
  AppendF64(out, handshake.p);
  AppendF64(out, handshake.beta);
  AppendU32(out, static_cast<uint32_t>(handshake.metric));
  return out;
}

Result<ShardHandshake> DecodeShardHandshake(std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ShardHandshake h;
  uint32_t scheme = 0;
  uint32_t slice_build = 0;
  uint32_t metric = 0;
  if (!cursor.ReadU32(&h.shard_id) || !cursor.ReadU32(&h.num_shards) ||
      !cursor.ReadU32(&scheme) || !cursor.ReadU32(&slice_build) ||
      !cursor.ReadU64(&h.graph_fingerprint) || !cursor.ReadF64(&h.p) ||
      !cursor.ReadF64(&h.beta) || !cursor.ReadU32(&metric)) {
    return Truncated("ShardHandshake");
  }
  if (scheme > static_cast<uint32_t>(PartitionScheme::kHash)) {
    return Status::InvalidArgument(StrCat("bad partition scheme ", scheme));
  }
  if (slice_build > static_cast<uint32_t>(SliceBuild::kSubgraph)) {
    return Status::InvalidArgument(StrCat("bad slice build ", slice_build));
  }
  // The wire carries a RESOLVED transition key; kAuto means the
  // coordinator never normalized its config against the graph, and two
  // processes could silently resolve it differently.
  if (metric == static_cast<uint32_t>(DegreeMetric::kAuto) ||
      metric > static_cast<uint32_t>(DegreeMetric::kInDegree)) {
    return Status::InvalidArgument(StrCat("bad degree metric ", metric));
  }
  if (h.num_shards == 0) {
    return Status::InvalidArgument("handshake num_shards is zero");
  }
  if (h.shard_id >= h.num_shards) {
    return Status::InvalidArgument(StrCat("handshake shard_id ", h.shard_id,
                                          " not below num_shards ",
                                          h.num_shards));
  }
  if (Status trailing = RejectTrailing(cursor, "ShardHandshake");
      !trailing.ok()) {
    return trailing;
  }
  h.scheme = static_cast<PartitionScheme>(scheme);
  h.slice_build = static_cast<SliceBuild>(slice_build);
  h.metric = static_cast<DegreeMetric>(metric);
  return h;
}

// --- ShardHandshakeAck ---

std::vector<uint8_t> EncodeShardHandshakeAck(const ShardHandshakeAck& ack) {
  std::vector<uint8_t> out;
  AppendU64(out, ack.num_nodes);
  AppendU64(out, ack.num_arcs);
  AppendU64(out, ack.num_owned);
  AppendU64(out, ack.boundary_in_arcs);
  AppendNodeList(out, ack.dangling_owned);
  AppendNodeList(out, ack.boundary_sources);
  // Trailing section, appended only when set: keeps the false encoding
  // byte-identical to the previous revision.
  if (ack.needs_metric_values) out.push_back(1);
  return out;
}

Result<ShardHandshakeAck> DecodeShardHandshakeAck(
    std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ShardHandshakeAck ack;
  if (!cursor.ReadU64(&ack.num_nodes) || !cursor.ReadU64(&ack.num_arcs) ||
      !cursor.ReadU64(&ack.num_owned) ||
      !cursor.ReadU64(&ack.boundary_in_arcs)) {
    return Truncated("ShardHandshakeAck");
  }
  if (Status s = ReadNodeList(cursor, "ShardHandshakeAck dangling",
                              &ack.dangling_owned);
      !s.ok()) {
    return s;
  }
  if (Status s = ReadNodeList(cursor, "ShardHandshakeAck boundary",
                              &ack.boundary_sources);
      !s.ok()) {
    return s;
  }
  if (cursor.remaining() != 0) {
    uint8_t needs_metric = 0;
    if (!cursor.ReadU8(&needs_metric)) return Truncated("ShardHandshakeAck");
    // The encoder writes this byte only when the flag is set; an
    // explicit 0 is non-canonical and treated as trailing garbage.
    if (needs_metric != 1) {
      return Status::InvalidArgument(
          StrCat("bad needs_metric_values byte ", needs_metric));
    }
    ack.needs_metric_values = true;
  }
  if (Status trailing = RejectTrailing(cursor, "ShardHandshakeAck");
      !trailing.ok()) {
    return trailing;
  }
  return ack;
}

// --- ShardSolveBegin ---

std::vector<uint8_t> EncodeShardSolveBegin(const ShardSolveBegin& begin) {
  std::vector<uint8_t> out;
  AppendU64(out, begin.solve_id);
  AppendU32(out, begin.method);
  AppendU32(out, static_cast<uint32_t>(begin.dangling));
  AppendF64(out, begin.alpha);
  AppendScoreList(out, begin.initial);
  AppendScoreList(out, begin.teleport);
  // Trailing section, appended only when non-empty: the empty encoding
  // stays byte-identical to the previous revision.
  if (!begin.metric_values.empty()) AppendScoreList(out, begin.metric_values);
  return out;
}

Result<ShardSolveBegin> DecodeShardSolveBegin(
    std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ShardSolveBegin begin;
  uint32_t dangling = 0;
  if (!cursor.ReadU64(&begin.solve_id) || !cursor.ReadU32(&begin.method) ||
      !cursor.ReadU32(&dangling) || !cursor.ReadF64(&begin.alpha)) {
    return Truncated("ShardSolveBegin");
  }
  // Only the two block-iterative methods have a distributed sweep; push
  // methods never reach this frame.
  if (begin.method != static_cast<uint32_t>(SolverMethod::kPower) &&
      begin.method != static_cast<uint32_t>(SolverMethod::kGaussSeidel)) {
    return Status::InvalidArgument(
        StrCat("bad solve method ", begin.method));
  }
  if (dangling > static_cast<uint32_t>(DanglingPolicy::kRenormalize)) {
    return Status::InvalidArgument(StrCat("bad dangling policy ", dangling));
  }
  if (Status s = ReadScoreList(cursor, "ShardSolveBegin initial",
                               &begin.initial);
      !s.ok()) {
    return s;
  }
  if (Status s = ReadScoreList(cursor, "ShardSolveBegin teleport",
                               &begin.teleport);
      !s.ok()) {
    return s;
  }
  if (begin.initial.size() != begin.teleport.size()) {
    return Status::InvalidArgument(
        StrCat("ShardSolveBegin initial has ", begin.initial.size(),
               " values but teleport has ", begin.teleport.size()));
  }
  if (cursor.remaining() != 0) {
    if (Status s = ReadScoreList(cursor, "ShardSolveBegin metric",
                                 &begin.metric_values);
        !s.ok()) {
      return s;
    }
    // The section exists only to carry values; an empty list would be
    // indistinguishable from (and longer than) its own absence.
    if (begin.metric_values.empty()) {
      return Status::InvalidArgument(
          "ShardSolveBegin metric section present but empty");
    }
  }
  if (Status trailing = RejectTrailing(cursor, "ShardSolveBegin");
      !trailing.ok()) {
    return trailing;
  }
  begin.dangling = static_cast<DanglingPolicy>(dangling);
  return begin;
}

// --- ShardSweepRequest ---

std::vector<uint8_t> EncodeShardSweepRequest(const ShardSweepRequest& request) {
  std::vector<uint8_t> out;
  AppendU64(out, request.solve_id);
  AppendU32(out, request.sweep);
  AppendF64(out, request.dangling_mass);
  out.push_back(request.has_rescale ? 1 : 0);
  AppendF64(out, request.rescale);
  AppendScoreList(out, request.boundary);
  return out;
}

Result<ShardSweepRequest> DecodeShardSweepRequest(
    std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ShardSweepRequest request;
  uint8_t has_rescale = 0;
  if (!cursor.ReadU64(&request.solve_id) || !cursor.ReadU32(&request.sweep) ||
      !cursor.ReadF64(&request.dangling_mass) ||
      !cursor.ReadU8(&has_rescale) || !cursor.ReadF64(&request.rescale)) {
    return Truncated("ShardSweepRequest");
  }
  if (has_rescale > 1) {
    return Status::InvalidArgument(
        StrCat("bad has_rescale byte ", has_rescale));
  }
  if (request.sweep == 0) {
    return Status::InvalidArgument("sweep index is zero (sweeps are 1-based)");
  }
  if (Status s = ReadScoreList(cursor, "ShardSweepRequest boundary",
                               &request.boundary);
      !s.ok()) {
    return s;
  }
  if (Status trailing = RejectTrailing(cursor, "ShardSweepRequest");
      !trailing.ok()) {
    return trailing;
  }
  request.has_rescale = has_rescale != 0;
  return request;
}

// --- ShardSweepResponse ---

std::vector<uint8_t> EncodeShardSweepResponse(
    const ShardSweepResponse& response) {
  std::vector<uint8_t> out;
  AppendU64(out, response.solve_id);
  AppendU32(out, response.sweep);
  AppendScoreList(out, response.owned);
  AppendF64(out, response.dangling_partial);
  AppendF64(out, response.residual_partial);
  return out;
}

Result<ShardSweepResponse> DecodeShardSweepResponse(
    std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ShardSweepResponse response;
  if (!cursor.ReadU64(&response.solve_id) ||
      !cursor.ReadU32(&response.sweep)) {
    return Truncated("ShardSweepResponse");
  }
  if (response.sweep == 0) {
    return Status::InvalidArgument("sweep index is zero (sweeps are 1-based)");
  }
  if (Status s = ReadScoreList(cursor, "ShardSweepResponse owned",
                               &response.owned);
      !s.ok()) {
    return s;
  }
  if (!cursor.ReadF64(&response.dangling_partial) ||
      !cursor.ReadF64(&response.residual_partial)) {
    return Truncated("ShardSweepResponse");
  }
  if (Status trailing = RejectTrailing(cursor, "ShardSweepResponse");
      !trailing.ok()) {
    return trailing;
  }
  return response;
}

// --- ShardSolveEnd ---

std::vector<uint8_t> EncodeShardSolveEnd(const ShardSolveEnd& end) {
  std::vector<uint8_t> out;
  AppendU64(out, end.solve_id);
  return out;
}

Result<ShardSolveEnd> DecodeShardSolveEnd(std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ShardSolveEnd end;
  if (!cursor.ReadU64(&end.solve_id)) return Truncated("ShardSolveEnd");
  if (Status trailing = RejectTrailing(cursor, "ShardSolveEnd");
      !trailing.ok()) {
    return trailing;
  }
  return end;
}

}  // namespace d2pr
