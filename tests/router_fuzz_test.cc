// Seeded randomized property tests for the partitioned-teleport router:
// over ~50 random graphs (power-law preferential attachment and bipartite
// member projections, weighted and unweighted) and random request mixes
// (uniform/personalized teleports, mixed p/alpha/beta, power and
// Gauss-Seidel solvers), the partitioned router's responses must agree
// with the single-engine reference within solver tolerance — top-k
// ranking included — and every merged score vector must carry total
// probability mass 1.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"
#include "linalg/vec_ops.h"
#include "serve/engine_router.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

constexpr int kNumCases = 50;
constexpr int kRequestsPerCase = 8;
constexpr size_t kTopK = 10;
// Solves run to tolerance 1e-11; the merge adds one rescale and one
// weighted sum per part, so agreement within 1e-7 leaves two orders of
// magnitude of slack over the analytic error bound.
constexpr double kScoreTolerance = 1e-7;
constexpr double kMassTolerance = 1e-9;

/// Alternates between a power-law (preferential attachment) graph and a
/// bipartite member-member projection; every fourth case is weighted.
Result<CsrGraph> FuzzGraph(int case_id) {
  const auto seed = static_cast<uint64_t>(case_id);
  if (case_id % 2 == 0) {
    Rng rng(1000 + seed);
    return BarabasiAlbert(
        static_cast<NodeId>(120 + (case_id * 13) % 120),
        2 + case_id % 3, &rng);
  }
  BipartiteWorldConfig config;
  config.num_members = static_cast<NodeId>(90 + (case_id * 7) % 60);
  config.num_venues = static_cast<NodeId>(30 + case_id % 20);
  config.venue_size_max = 12;
  config.seed = 2000 + seed;
  auto world = GenerateBipartiteWorld(config);
  if (!world.ok()) return world.status();
  ProjectionConfig projection;
  projection.weighted = case_id % 4 == 1;
  return ProjectMembers(*world, projection);
}

RankRequest RandomRequest(Rng& rng, const CsrGraph& graph) {
  RankRequest request;
  request.p = rng.Uniform(-1.5, 2.0);
  request.alpha = rng.Uniform(0.5, 0.9);
  request.beta = graph.weighted() ? rng.Uniform() : 0.0;
  request.method =
      rng.Bernoulli(0.5) ? SolverMethod::kPower : SolverMethod::kGaussSeidel;
  request.tolerance = 1e-11;
  request.max_iterations = 3000;  // always converge: parity needs it
  if (rng.Bernoulli(0.6)) {
    const auto num_seeds = static_cast<size_t>(rng.UniformInt(1, 5));
    while (request.seeds.size() < num_seeds) {
      const auto seed = static_cast<NodeId>(
          rng.UniformInt(0, graph.num_nodes() - 1));
      if (std::find(request.seeds.begin(), request.seeds.end(), seed) ==
          request.seeds.end()) {
        request.seeds.push_back(seed);
      }
    }
  }
  return request;
}

/// Top-k agreement modulo near-ties: position j may differ only between
/// nodes whose reference scores are within tolerance of each other.
void ExpectTopKAgreement(const std::vector<double>& reference,
                         const std::vector<double>& routed) {
  const std::vector<NodeId> expected = TopK(reference, kTopK);
  const std::vector<NodeId> actual = TopK(routed, kTopK);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t j = 0; j < expected.size(); ++j) {
    if (expected[j] == actual[j]) continue;
    const double score_gap =
        std::abs(reference[static_cast<size_t>(expected[j])] -
                 reference[static_cast<size_t>(actual[j])]);
    EXPECT_LE(score_gap, kScoreTolerance)
        << "top-" << j << " disagrees beyond a near-tie: node "
        << expected[j] << " vs " << actual[j];
  }
}

TEST(RouterFuzzTest, PartitionedAgreesWithSingleEngineReference) {
  int split_requests_seen = 0;
  for (int case_id = 0; case_id < kNumCases; ++case_id) {
    SCOPED_TRACE("case " + std::to_string(case_id));
    auto graph = FuzzGraph(case_id);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    ASSERT_GT(graph->num_nodes(), 0);

    Rng rng(9000 + static_cast<uint64_t>(case_id));
    std::vector<RankRequest> requests;
    for (int i = 0; i < kRequestsPerCase; ++i) {
      requests.push_back(RandomRequest(rng, *graph));
    }

    D2prEngine reference = D2prEngine::Borrowing(*graph);
    auto sequential = reference.RankBatch(requests);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    const size_t num_shards = 2 + static_cast<size_t>(case_id % 4);
    EngineRouter router = EngineRouter::Borrowing(
        *graph, {.num_shards = num_shards,
                 .policy = RoutingPolicy::kPartitionedTeleport});
    auto routed = router.RankBatch(requests);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ASSERT_EQ(routed->size(), sequential->size());

    for (size_t i = 0; i < requests.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      const RankResponse& expected = (*sequential)[i];
      const RankResponse& actual = (*routed)[i];
      ASSERT_TRUE(expected.converged);
      EXPECT_TRUE(actual.converged);

      // Power/Gauss-Seidel under kTeleport preserve total mass exactly;
      // merged responses are renormalized to mass 1 by contract.
      EXPECT_NEAR(Sum(actual.scores), 1.0, kMassTolerance);

      ASSERT_EQ(actual.scores.size(), expected.scores.size());
      double max_diff = 0.0;
      for (size_t n = 0; n < actual.scores.size(); ++n) {
        max_diff = std::max(
            max_diff, std::abs(actual.scores[n] - expected.scores[n]));
      }
      EXPECT_LE(max_diff, kScoreTolerance);
      ExpectTopKAgreement(expected.scores, actual.scores);

      bool spans_shards = false;
      if (requests[i].seeds.size() > 1) {
        const size_t owner = router.OwnerShardOf(requests[i].seeds[0]);
        for (NodeId seed : requests[i].seeds) {
          if (router.OwnerShardOf(seed) != owner) spans_shards = true;
        }
      }
      if (spans_shards) ++split_requests_seen;
    }
  }
  // The property is only meaningful if the mix actually exercised the
  // split-and-merge path a substantial number of times.
  EXPECT_GT(split_requests_seen, 25);
}

TEST(RouterFuzzTest, ReplicatedIsBitIdenticalOnRandomMixes) {
  // The replicated policy claims more than tolerance agreement: on the
  // same random mixes (untagged, so routing freedom is maximal), every
  // response must be bit-identical to the sequential reference.
  for (int case_id = 0; case_id < 10; ++case_id) {
    SCOPED_TRACE("case " + std::to_string(case_id));
    auto graph = FuzzGraph(case_id);
    ASSERT_TRUE(graph.ok());

    Rng rng(7000 + static_cast<uint64_t>(case_id));
    std::vector<RankRequest> requests;
    for (int i = 0; i < kRequestsPerCase; ++i) {
      requests.push_back(RandomRequest(rng, *graph));
    }

    D2prEngine reference = D2prEngine::Borrowing(*graph);
    auto sequential = reference.RankBatch(requests);
    ASSERT_TRUE(sequential.ok());

    EngineRouter router = EngineRouter::Borrowing(
        *graph, {.num_shards = 1 + static_cast<size_t>(case_id % 4)});
    auto routed = router.RankBatch(requests);
    ASSERT_TRUE(routed.ok());
    ASSERT_EQ(routed->size(), sequential->size());
    for (size_t i = 0; i < routed->size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      EXPECT_EQ((*routed)[i].scores, (*sequential)[i].scores);
      EXPECT_EQ((*routed)[i].iterations, (*sequential)[i].iterations);
      EXPECT_EQ((*routed)[i].transition_cache_hit,
                (*sequential)[i].transition_cache_hit);
    }
  }
}

}  // namespace
}  // namespace d2pr
