// Loopback serving benchmark for the network front door: stands up an
// in-process RpcServer per configuration (single-engine runtime at
// several thread counts, then a replicated router fleet at several shard
// counts), drives it with the seeded Zipf load generator over 127.0.0.1,
// and prints one markdown table row per configuration — p50 / p99
// latency, throughput, coalescing joins, and sheds. Numbers are recorded
// in results/net_bench.md.
//
// Not a Google Benchmark microbenchmark: the measured unit is a whole
// client/server round trip with real sockets and real threads, so the
// loadgen's own percentile aggregation (net/loadgen.h) is the harness.
// The binary defines its own main and is runnable standalone:
//
//   ./bench/perf_net [--nodes=N] [--requests=N] [--connections=N]

#include <cstdio>
#include <memory>
#include <string>

#include "api/engine.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "serve/engine_router.h"
#include "serve/serving_runtime.h"

namespace d2pr {
namespace {

struct SweepConfig {
  NodeId nodes = 20000;
  size_t connections = 4;
  size_t requests_per_connection = 250;
};

CsrGraph MakeGraph(NodeId nodes) {
  Rng rng(42);
  auto graph = BarabasiAlbert(nodes, 4, &rng);
  D2PR_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// The query mix: Zipf-personalized forward-push queries — the per-query
/// regime the paper's personalized rankings run in, and skewed enough
/// (s = 1.3) that hot-node requests overlap in flight and exercise
/// coalescing.
LoadGenOptions MixFor(uint16_t port, const SweepConfig& sweep) {
  LoadGenOptions options;
  options.port = port;
  options.connections = sweep.connections;
  options.requests_per_connection = sweep.requests_per_connection;
  options.zipf_s = 1.3;
  options.seed = 7;
  options.base.p = 0.5;
  options.base.method = SolverMethod::kForwardPush;
  options.base.push_epsilon = 1e-6;
  return options;
}

void PrintRow(const std::string& label, size_t threads, size_t shards,
              const LoadGenReport& report, const ServerStats& stats) {
  std::printf(
      "| %-22s | %7zu | %6zu | %9zu | %8.0f | %8.0f | %9.0f | %9lld | "
      "%5lld |\n",
      label.c_str(), threads, shards, report.attempted, report.p50_us,
      report.p99_us, report.requests_per_s,
      static_cast<long long>(stats.coalesce_joins.load()),
      static_cast<long long>(stats.shed_unavailable.load()));
  std::fflush(stdout);
}

void RunRuntimeConfig(const CsrGraph& graph, size_t threads,
                      const SweepConfig& sweep) {
  D2prEngine engine = D2prEngine::Borrowing(graph);
  ServingOptions serving_options;
  serving_options.num_threads = threads;
  ServingRuntime runtime = ServingRuntime::Borrowing(engine, serving_options);
  auto backend = MakeBackend(runtime);
  RpcServer server(*backend);
  D2PR_CHECK(server.Start().ok());

  auto report = RunLoadGen(MixFor(server.port(), sweep));
  D2PR_CHECK(report.ok()) << report.status().ToString();
  D2PR_CHECK_EQ(report->failed, 0u);
  PrintRow("runtime", threads, 1, report.value(), server.stats());
}

void RunRouterConfig(const CsrGraph& graph, size_t shards, size_t threads,
                     const SweepConfig& sweep) {
  RouterOptions router_options;
  router_options.num_shards = shards;
  router_options.worker_threads = threads;
  // The router ships with its response memo off (parity-pure default);
  // a serving deployment turns it on, and the runtime rows above have
  // theirs on, so match — otherwise every hot repeat re-solves here.
  router_options.score_cache_capacity = 256;
  EngineRouter router = EngineRouter::Borrowing(graph, router_options);
  auto backend = MakeBackend(router);
  RpcServer server(*backend);
  D2PR_CHECK(server.Start().ok());

  auto report = RunLoadGen(MixFor(server.port(), sweep));
  D2PR_CHECK(report.ok()) << report.status().ToString();
  D2PR_CHECK_EQ(report->failed, 0u);
  PrintRow("router (replicated)", threads, shards, report.value(),
           server.stats());
}

int Run(const Flags& flags) {
  SweepConfig sweep;
  sweep.nodes = static_cast<NodeId>(*flags.GetInt("nodes", 20000));
  sweep.connections =
      static_cast<size_t>(*flags.GetInt("connections", 4));
  sweep.requests_per_connection =
      static_cast<size_t>(*flags.GetInt("requests", 250));

  const CsrGraph graph = MakeGraph(sweep.nodes);
  std::printf("graph: %d nodes, %lld arcs; %zu connections x %zu "
              "Zipf(s=1.3) forward-push queries per row\n\n",
              graph.num_nodes(), static_cast<long long>(graph.num_arcs()),
              sweep.connections, sweep.requests_per_connection);
  std::printf(
      "| backend                | threads | shards | attempted |  p50_us "
      "|  p99_us |      ok/s | coalesced |  shed |\n"
      "|------------------------|--------:|-------:|----------:|--------:"
      "|--------:|----------:|----------:|------:|\n");
  for (size_t threads : {1, 2, 4}) {
    RunRuntimeConfig(graph, threads, sweep);
  }
  for (size_t shards : {2, 4}) {
    RunRouterConfig(graph, shards, /*threads=*/2, sweep);
  }
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  return d2pr::Run(flags.value());
}
