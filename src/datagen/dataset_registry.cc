#include "datagen/dataset_registry.h"

#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"
#include "core/d2pr.h"
#include "datagen/distributions.h"
#include "datagen/significance.h"
#include "stats/ranking.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/traversal.h"

namespace d2pr {

namespace {

NodeId Scaled(NodeId base, double scale) {
  const double value = std::round(static_cast<double>(base) * scale);
  return std::max<NodeId>(8, static_cast<NodeId>(value));
}

// Builds an unweighted copy of a weighted undirected graph (same arcs).
CsrGraph StripWeights(const CsrGraph& weighted) {
  GraphBuilder builder(weighted.num_nodes(), weighted.kind(),
                       /*weighted=*/false);
  for (NodeId u = 0; u < weighted.num_nodes(); ++u) {
    for (NodeId v : weighted.OutNeighbors(u)) {
      if (!weighted.directed() && v < u) continue;
      D2PR_CHECK(builder.AddEdge(u, v).ok());
    }
  }
  auto built = builder.Build(DuplicatePolicy::kError);
  D2PR_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

struct ProjectedPieces {
  CsrGraph unweighted;
  CsrGraph weighted;
};

// Projects one side of a world both weighted and unweighted.
Result<ProjectedPieces> ProjectBoth(const BipartiteWorld& world,
                                    bool member_side) {
  ProjectionConfig weighted_config;
  weighted_config.weighted = true;
  D2PR_ASSIGN_OR_RETURN(CsrGraph weighted,
                        member_side ? ProjectMembers(world, weighted_config)
                                    : ProjectVenues(world, weighted_config));
  ProjectedPieces pieces;
  pieces.unweighted = StripWeights(weighted);
  pieces.weighted = std::move(weighted);
  return pieces;
}

// Multiplies each node's significance by (mean neighbor degree)^exponent:
// a social-spillover term (peer influence, recommender discovery, prolific
// co-authors) that makes neighborhood hubness genuinely informative — the
// structural reason degree *boosting* helps in application Group C.
void ApplyNeighborDegreeSpillover(const CsrGraph& graph, double exponent,
                                  std::vector<double>* significance) {
  if (exponent == 0.0) return;
  D2PR_CHECK_EQ(significance->size(),
                static_cast<size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto nbrs = graph.OutNeighbors(v);
    if (nbrs.empty()) continue;
    double total = 0.0;
    for (NodeId u : nbrs) total += static_cast<double>(graph.OutDegree(u));
    const double mean = total / static_cast<double>(nbrs.size());
    (*significance)[static_cast<size_t>(v)] *=
        std::pow(std::max(mean, 1.0), exponent);
  }
}

// Blends the significance with a word-of-mouth attention score: the
// stationary distribution of the *conventional* uniform-split walk on the
// final graph (each node spreads attention equally over its neighbors).
// This is the defining mechanism of application Group B — significance
// driven by a diffusion process that matches the standard PageRank walk,
// so p = 0 is genuinely the right de-coupling. The blend operates on
// normal scores, preserving the quality component's rank structure.
// `degree_slope` adds a direct degree term on top (negative values model a
// mild crowding penalty that diffused attention does not share).
void ApplyAttentionBlend(const CsrGraph& graph, double slope,
                         double degree_slope,
                         std::vector<double>* significance) {
  if (slope == 0.0 && degree_slope == 0.0) return;
  D2PR_CHECK_EQ(significance->size(),
                static_cast<size_t>(graph.num_nodes()));
  auto pagerank = ComputeConventionalPagerank(graph, /*alpha=*/0.85);
  D2PR_CHECK(pagerank.ok()) << pagerank.status().ToString();
  const std::vector<double> sig_ranks =
      AverageRanks(*significance, RankOrder::kAscending);
  const std::vector<double> attention_ranks =
      AverageRanks(pagerank->scores, RankOrder::kAscending);
  const std::vector<double> degree_ranks =
      AverageRanks(DegreesAsDoubles(graph), RankOrder::kAscending);
  const double denom = static_cast<double>(significance->size()) + 1.0;
  for (size_t i = 0; i < significance->size(); ++i) {
    (*significance)[i] =
        NormalQuantile(sig_ranks[i] / denom) +
        slope * NormalQuantile(attention_ranks[i] / denom) +
        degree_slope * NormalQuantile(degree_ranks[i] / denom);
  }
}

// Restricts a data graph to the largest connected component of its
// (weighted) topology. The paper's co-occurrence graphs are effectively
// connected; in synthetic worlds stray isolated members/venues would
// otherwise sit at degree 0 with degenerate significance and distort the
// rank correlations.
DataGraph FinalizeDataGraph(DataGraph graph, double spillover_exponent,
                            double attention_slope = 0.0,
                            double attention_degree_slope = 0.0) {
  Subgraph sub = LargestComponentSubgraph(graph.weighted);
  std::vector<double> significance(sub.original_id.size());
  for (size_t i = 0; i < sub.original_id.size(); ++i) {
    significance[i] =
        graph.significance[static_cast<size_t>(sub.original_id[i])];
  }
  graph.weighted = std::move(sub.graph);
  graph.unweighted = StripWeights(graph.weighted);
  graph.significance = std::move(significance);
  ApplyNeighborDegreeSpillover(graph.unweighted, spillover_exponent,
                               &graph.significance);
  ApplyAttentionBlend(graph.unweighted, attention_slope,
                      attention_degree_slope, &graph.significance);
  return graph;
}

// ---------------------------------------------------------------------
// Per-graph generator configurations. Node counts are the scale-1.0
// defaults; Table 3 ratios (venue size ranges, activity skew) echo the
// paper's datasets at roughly 1/10 - 1/50 linear scale.
// ---------------------------------------------------------------------

Result<DataGraph> MakeImdbActorActor(const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(3600, options.scale);  // actors
  config.num_venues = Scaled(1800, options.scale);   // movies
  config.venue_size_min = 2;
  config.venue_size_max = 12;
  config.venue_size_zipf_s = 1.1;
  config.affinity = 5.0;
  // The Group A mechanism: prestigious movies cost several times more
  // effort, so with near-homogeneous budgets the high-quality (assortative)
  // actors afford only a few roles.
  config.cost_base = 1.0;
  config.cost_quality_slope = 3.5;
  config.budget_mean = 10.0;
  config.budget_sigma = 0.5;  // newcomers: low degree at any quality level
  config.seed = options.seed ^ 0x1111;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/true));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kImdbActorActor;
  graph.name = "imdb_actor_actor";
  graph.expected_group = ApplicationGroup::kPenalizationHelps;
  graph.weight_semantics = "# of common movies";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  graph.significance = AvgVenueQualitySignificance(world, 0.12, &noise);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.0);
}

Result<DataGraph> MakeImdbMovieMovie(const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(3600, options.scale);  // contributors
  config.num_venues = Scaled(2400, options.scale);   // movies
  config.venue_size_min = 2;
  config.venue_size_max = 8;
  config.venue_size_zipf_s = 1.0;
  config.affinity = 5.0;
  config.cost_base = 1.0;
  config.cost_quality_slope = 0.0;  // no cost-prestige coupling
  config.budget_mean = 8.0;
  config.budget_sigma = 0.2;  // comparable neighbor degrees (paper Table 3)
  config.seed = options.seed ^ 0x2222;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/false));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kImdbMovieMovie;
  graph.name = "imdb_movie_movie";
  graph.expected_group = ApplicationGroup::kConventionalIdeal;
  graph.weight_semantics = "# of common contributors";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  // Mild positive size bonus: big casts are big-budget productions.
  graph.significance =
      VenueRatingSignificance(world, /*size_slope=*/0.05,
                              /*noise_sigma=*/0.5, &noise);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.0,
                           /*attention_slope=*/0.4,
                           /*attention_degree_slope=*/-0.2);
}

Result<DataGraph> MakeDblpArticleArticle(const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(2500, options.scale);  // authors
  config.num_venues = Scaled(2500, options.scale);   // articles
  config.venue_size_min = 1;
  config.venue_size_max = 8;
  config.venue_size_zipf_s = 0.9;
  config.affinity = 3.0;
  config.cost_base = 1.0;
  config.cost_quality_slope = 0.0;
  // Heavy-tailed productivity: a few authors write tens of papers, giving
  // every article a dominant high-degree neighbor (paper Table 3: the
  // article graph's neighbor-degree spread is large).
  config.budget_mean = 6.0;
  config.budget_sigma = 1.0;
  config.seed = options.seed ^ 0x3333;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/false));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kDblpArticleArticle;
  graph.name = "dblp_article_article";
  graph.expected_group = ApplicationGroup::kBoostingHelps;
  graph.weight_semantics = "# of co-authors shared";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  // Citations grow superlinearly with author count (visibility).
  graph.significance = SizeScaledCountSignificance(
      world, /*quality_scale=*/1.2, /*size_exponent=*/0.25,
      /*noise_sigma=*/0.6, &noise);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.45);
}

Result<DataGraph> MakeDblpAuthorAuthor(const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(3000, options.scale);  // authors
  config.num_venues = Scaled(3500, options.scale);   // articles
  config.venue_size_min = 1;
  config.venue_size_max = 6;
  config.venue_size_zipf_s = 0.8;
  config.affinity = 6.0;
  config.cost_base = 1.0;
  config.cost_quality_slope = 0.0;
  config.budget_mean = 7.0;
  config.budget_sigma = 0.3;  // homogeneous: comparable neighbor degrees
  config.seed = options.seed ^ 0x4444;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/true));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kDblpAuthorAuthor;
  graph.name = "dblp_author_author";
  graph.expected_group = ApplicationGroup::kConventionalIdeal;
  graph.weight_semantics = "# of co-papers";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  // Author significance = average citations of the author's articles;
  // citations tied mildly to article size so co-authorship degree carries
  // a weak positive signal.
  const std::vector<double> citations = SizeScaledCountSignificance(
      world, /*quality_scale=*/2.0, /*size_exponent=*/0.05,
      /*noise_sigma=*/0.5, &noise);
  graph.significance = AvgVenueSignificance(world, citations);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.0,
                           /*attention_slope=*/0.25);
}

Result<DataGraph> MakeLastfmListenerListener(const RegistryOptions& options) {
  const NodeId n = Scaled(1900, options.scale);
  Rng rng(options.seed ^ 0x5555);
  // Listener activity (lognormal) drives both friend count and listening
  // volume: the Group C coupling.
  std::vector<double> activity(static_cast<size_t>(n));
  for (double& a : activity) a = rng.Lognormal(0.0, 1.0);
  // Expected degrees ∝ activity^0.8 rescaled to the paper's avg degree
  // (13.4, Table 3).
  std::vector<double> expected(static_cast<size_t>(n));
  double total = 0.0;
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = std::pow(activity[i], 0.3);
    total += expected[i];
  }
  const double rescale =
      13.4 * static_cast<double>(n) / std::max(total, 1e-12);
  for (double& w : expected) w *= rescale;
  D2PR_ASSIGN_OR_RETURN(CsrGraph social, ChungLu(expected, &rng));
  D2PR_ASSIGN_OR_RETURN(CsrGraph weighted,
                        CommonNeighborWeightedGraph(social));

  DataGraph graph;
  graph.id = PaperGraphId::kLastfmListenerListener;
  graph.name = "lastfm_listener_listener";
  graph.expected_group = ApplicationGroup::kBoostingHelps;
  graph.weight_semantics = "# of shared friends";
  graph.unweighted = std::move(social);
  graph.weighted = std::move(weighted);
  graph.significance.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < graph.significance.size(); ++i) {
    graph.significance[i] =
        activity[i] * std::exp(rng.Normal(0.0, 0.9));
  }
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.5);
}

Result<DataGraph> MakeLastfmArtistArtist(const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(2200, options.scale);  // listeners
  config.num_venues = Scaled(1700, options.scale);   // artists
  config.venue_size_min = 3;
  config.venue_size_max = 220;  // a few artists reach huge audiences
  config.venue_size_zipf_s = 1.15;
  config.affinity = 2.0;  // taste matching, weak
  config.cost_base = 1.0;
  config.cost_quality_slope = 0.0;
  config.budget_mean = 12.0;  // artists listened-to per listener
  config.budget_sigma = 0.5;
  config.seed = options.seed ^ 0x6666;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/false));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kLastfmArtistArtist;
  graph.name = "lastfm_artist_artist";
  graph.expected_group = ApplicationGroup::kBoostingHelps;
  graph.weight_semantics = "# of shared listeners";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  // Play counts scale with audience size: degree is informative.
  graph.significance = SizeScaledCountSignificance(
      world, /*quality_scale=*/1.0, /*size_exponent=*/0.25,
      /*noise_sigma=*/0.8, &noise);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.4);
}

Result<DataGraph> MakeEpinionsCommenterCommenter(
    const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(1800, options.scale);  // commenters
  config.num_venues = Scaled(3500, options.scale);   // products
  config.venue_size_min = 2;
  config.venue_size_max = 15;
  config.venue_size_zipf_s = 1.1;
  config.affinity = 3.0;
  config.cost_base = 1.0;
  config.cost_quality_slope = 0.0;
  // Heavy activity tail: some commenters comment on everything.
  config.budget_mean = 10.0;
  config.budget_sigma = 0.7;
  config.seed = options.seed ^ 0x7777;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/true));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kEpinionsCommenterCommenter;
  graph.name = "epinions_commenter_commenter";
  graph.expected_group = ApplicationGroup::kPenalizationHelps;
  graph.weight_semantics = "# of shared products";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  // Trust earned dilutes with comment volume (§4.3.1's reading).
  graph.significance = EffortDilutedTrustSignificance(
      world, /*dilution=*/0.45, /*budget_exponent=*/0.6,
      /*noise_sigma=*/0.45, &noise);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.0);
}

Result<DataGraph> MakeEpinionsProductProduct(const RegistryOptions& options) {
  BipartiteWorldConfig config;
  config.num_members = Scaled(1600, options.scale);  // commenters
  config.num_venues = Scaled(2800, options.scale);   // products
  config.venue_size_min = 2;
  config.venue_size_max = 25;
  config.venue_size_zipf_s = 1.2;
  config.affinity = 2.0;
  config.cost_base = 1.0;
  config.cost_quality_slope = 0.0;
  config.budget_mean = 12.0;
  config.budget_sigma = 0.6;
  config.seed = options.seed ^ 0x8888;
  D2PR_ASSIGN_OR_RETURN(BipartiteWorld world, GenerateBipartiteWorld(config));
  D2PR_ASSIGN_OR_RETURN(ProjectedPieces pieces,
                        ProjectBoth(world, /*member_side=*/false));

  Rng noise(config.seed ^ 0xa5a5);
  DataGraph graph;
  graph.id = PaperGraphId::kEpinionsProductProduct;
  graph.name = "epinions_product_product";
  graph.expected_group = ApplicationGroup::kPenalizationHelps;
  graph.weight_semantics = "# of shared commenters";
  graph.unweighted = std::move(pieces.unweighted);
  graph.weighted = std::move(pieces.weighted);
  // The paper's Fig. 5 observation: the more comments a product draws,
  // the more likely they are negative — a strong negative size slope.
  graph.significance =
      VenueRatingSignificance(world, /*size_slope=*/-0.2,
                              /*noise_sigma=*/0.5, &noise);
  return FinalizeDataGraph(std::move(graph), /*spillover_exponent=*/0.0);
}

}  // namespace

Result<DataGraph> MakePaperGraph(PaperGraphId id,
                                 const RegistryOptions& options) {
  if (!(options.scale > 0.0)) {
    return Status::InvalidArgument(
        StrCat("scale must be positive, got ", options.scale));
  }
  switch (id) {
    case PaperGraphId::kImdbMovieMovie:
      return MakeImdbMovieMovie(options);
    case PaperGraphId::kImdbActorActor:
      return MakeImdbActorActor(options);
    case PaperGraphId::kDblpArticleArticle:
      return MakeDblpArticleArticle(options);
    case PaperGraphId::kDblpAuthorAuthor:
      return MakeDblpAuthorAuthor(options);
    case PaperGraphId::kLastfmListenerListener:
      return MakeLastfmListenerListener(options);
    case PaperGraphId::kLastfmArtistArtist:
      return MakeLastfmArtistArtist(options);
    case PaperGraphId::kEpinionsCommenterCommenter:
      return MakeEpinionsCommenterCommenter(options);
    case PaperGraphId::kEpinionsProductProduct:
      return MakeEpinionsProductProduct(options);
  }
  return Status::InvalidArgument("unknown PaperGraphId");
}

std::vector<PaperGraphId> AllPaperGraphIds() {
  return {
      PaperGraphId::kImdbMovieMovie,
      PaperGraphId::kImdbActorActor,
      PaperGraphId::kDblpArticleArticle,
      PaperGraphId::kDblpAuthorAuthor,
      PaperGraphId::kLastfmListenerListener,
      PaperGraphId::kLastfmArtistArtist,
      PaperGraphId::kEpinionsCommenterCommenter,
      PaperGraphId::kEpinionsProductProduct,
  };
}

std::vector<PaperGraphId> GraphsInGroup(ApplicationGroup group) {
  switch (group) {
    case ApplicationGroup::kPenalizationHelps:
      return {PaperGraphId::kImdbActorActor,
              PaperGraphId::kEpinionsCommenterCommenter,
              PaperGraphId::kEpinionsProductProduct};
    case ApplicationGroup::kConventionalIdeal:
      return {PaperGraphId::kDblpAuthorAuthor,
              PaperGraphId::kImdbMovieMovie};
    case ApplicationGroup::kBoostingHelps:
      return {PaperGraphId::kDblpArticleArticle,
              PaperGraphId::kLastfmListenerListener,
              PaperGraphId::kLastfmArtistArtist};
  }
  return {};
}

std::string_view PaperGraphName(PaperGraphId id) {
  switch (id) {
    case PaperGraphId::kImdbMovieMovie:
      return "imdb_movie_movie";
    case PaperGraphId::kImdbActorActor:
      return "imdb_actor_actor";
    case PaperGraphId::kDblpArticleArticle:
      return "dblp_article_article";
    case PaperGraphId::kDblpAuthorAuthor:
      return "dblp_author_author";
    case PaperGraphId::kLastfmListenerListener:
      return "lastfm_listener_listener";
    case PaperGraphId::kLastfmArtistArtist:
      return "lastfm_artist_artist";
    case PaperGraphId::kEpinionsCommenterCommenter:
      return "epinions_commenter_commenter";
    case PaperGraphId::kEpinionsProductProduct:
      return "epinions_product_product";
  }
  return "unknown";
}

ApplicationGroup ExpectedGroup(PaperGraphId id) {
  switch (id) {
    case PaperGraphId::kImdbActorActor:
    case PaperGraphId::kEpinionsCommenterCommenter:
    case PaperGraphId::kEpinionsProductProduct:
      return ApplicationGroup::kPenalizationHelps;
    case PaperGraphId::kImdbMovieMovie:
    case PaperGraphId::kDblpAuthorAuthor:
      return ApplicationGroup::kConventionalIdeal;
    case PaperGraphId::kDblpArticleArticle:
    case PaperGraphId::kLastfmListenerListener:
    case PaperGraphId::kLastfmArtistArtist:
      return ApplicationGroup::kBoostingHelps;
  }
  return ApplicationGroup::kConventionalIdeal;
}

std::string_view GroupLabel(ApplicationGroup group) {
  switch (group) {
    case ApplicationGroup::kPenalizationHelps:
      return "Group A (p > 0 optimal: penalize degrees)";
    case ApplicationGroup::kConventionalIdeal:
      return "Group B (p = 0 optimal: conventional PageRank)";
    case ApplicationGroup::kBoostingHelps:
      return "Group C (p < 0 optimal: boost degrees)";
  }
  return "unknown group";
}

double ScaleFromEnv() {
  const char* env = std::getenv("D2PR_SCALE");
  if (env == nullptr) return 1.0;
  double scale = 0.0;
  if (!ParseDouble(env, &scale)) return 1.0;
  if (scale < 0.1) return 0.1;
  if (scale > 100.0) return 100.0;
  return scale;
}

}  // namespace d2pr
