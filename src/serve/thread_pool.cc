#include "serve/thread_pool.h"

#include <exception>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace d2pr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  D2PR_CHECK(task != nullptr) << "ThreadPool::Submit: empty task";
  {
    std::lock_guard<std::mutex> lock(mu_);
    D2PR_CHECK(!stopping_) << "ThreadPool::Submit after shutdown began";
    queue_.push_back(std::move(task));
    // Inside the lock so the gauge can never under-report a task that is
    // already visible to a worker.
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting so shutdown never abandons submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      busy_workers_.fetch_add(1, std::memory_order_relaxed);
    }
    // A task that throws must not take its worker down (an escaped
    // exception on a thread is std::terminate) nor wedge shutdown: log
    // it and move to the next task. Tasks needing their errors surfaced
    // return Status / set promises — both already in use above this
    // layer — rather than throwing into the pool.
    // RAII so the busy gauge also drops when a task throws.
    struct BusyGuard {
      std::atomic<int64_t>& gauge;
      ~BusyGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
    } busy_guard{busy_workers_};
    try {
      task();
    } catch (const std::exception& e) {
      D2PR_LOG(Error) << "ThreadPool task threw: " << e.what();
    } catch (...) {
      D2PR_LOG(Error) << "ThreadPool task threw a non-std exception";
    }
  }
}

}  // namespace d2pr
