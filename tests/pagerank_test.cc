#include "core/pagerank.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/teleport.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

CsrGraph BuildOrDie(GraphBuilder* builder) {
  auto result = builder->Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TransitionMatrix Transition(const CsrGraph& graph, double p = 0.0) {
  auto result = TransitionMatrix::Build(graph, {.p = p});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

PagerankResult Solve(const CsrGraph& graph, const TransitionMatrix& t,
                     PagerankOptions options = {}) {
  auto result = SolvePagerank(graph, t, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PagerankTest, TwoNodeCycleIsUniform) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  PagerankResult pr = Solve(graph, Transition(graph));
  EXPECT_TRUE(pr.converged);
  EXPECT_NEAR(pr.scores[0], 0.5, 1e-9);
  EXPECT_NEAR(pr.scores[1], 0.5, 1e-9);
}

TEST(PagerankTest, ScoresSumToOne) {
  Rng rng(11);
  auto graph = BarabasiAlbert(500, 3, &rng);
  ASSERT_TRUE(graph.ok());
  PagerankResult pr = Solve(*graph, Transition(*graph, 1.0));
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
  EXPECT_TRUE(pr.converged);
}

TEST(PagerankTest, StarGraphClosedForm) {
  // Undirected star: hub 0, leaves 1..k. With uniform teleport, by symmetry
  // every leaf has score s and the hub h: h = alpha*k*s... derive from the
  // fixed point: leaf gets alpha * (h / k) + (1-alpha)/n; hub gets
  // alpha * (k * s_leaf_to_hub) ... Each leaf's entire walk mass goes to
  // the hub, so h = alpha * (sum of leaf scores) + (1-alpha)/n.
  constexpr int k = 9;
  constexpr int n = k + 1;
  constexpr double alpha = 0.85;
  GraphBuilder builder(n, GraphKind::kUndirected);
  for (NodeId leaf = 1; leaf <= k; ++leaf) {
    ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  CsrGraph graph = BuildOrDie(&builder);
  PagerankOptions options;
  options.alpha = alpha;
  options.tolerance = 1e-14;
  PagerankResult pr = Solve(graph, Transition(graph), options);
  // Solve analytically: h + k*s = 1; h = alpha*k*s + (1-alpha)/n.
  const double s =
      (1.0 - (1.0 - alpha) / n) / (k * (1.0 + alpha));
  const double h = 1.0 - k * s;
  EXPECT_NEAR(pr.scores[0], h, 1e-10);
  for (NodeId leaf = 1; leaf <= k; ++leaf) {
    EXPECT_NEAR(pr.scores[leaf], s, 1e-10);
  }
}

TEST(PagerankTest, AlphaZeroReturnsTeleport) {
  Rng rng(13);
  auto graph = ErdosRenyi(50, 100, &rng);
  ASSERT_TRUE(graph.ok());
  PagerankOptions options;
  options.alpha = 0.0;
  PagerankResult pr = Solve(*graph, Transition(*graph), options);
  for (double score : pr.scores) EXPECT_NEAR(score, 1.0 / 50.0, 1e-12);
  EXPECT_TRUE(pr.converged);
}

TEST(PagerankTest, SymmetryOfEquivalentNodes) {
  // Path 0-1-2: nodes 0 and 2 are automorphic and must tie exactly.
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  CsrGraph graph = BuildOrDie(&builder);
  PagerankResult pr = Solve(graph, Transition(graph));
  EXPECT_NEAR(pr.scores[0], pr.scores[2], 1e-12);
  EXPECT_GT(pr.scores[1], pr.scores[0]);  // middle node is more central
}

TEST(PagerankTest, DanglingTeleportPolicyPreservesMass) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());  // 1, 2 are sinks
  CsrGraph graph = BuildOrDie(&builder);
  PagerankOptions options;
  options.dangling = DanglingPolicy::kTeleport;
  PagerankResult pr = Solve(graph, Transition(graph), options);
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
  EXPECT_NEAR(pr.scores[1], pr.scores[2], 1e-12);  // symmetric sinks
  EXPECT_LT(pr.scores[0], pr.scores[1]);  // sinks accumulate
}

TEST(PagerankTest, DanglingSelfLoopPolicyPreservesMass) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  CsrGraph graph = BuildOrDie(&builder);
  PagerankOptions options;
  options.dangling = DanglingPolicy::kSelfLoop;
  PagerankResult pr = Solve(graph, Transition(graph), options);
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
  // Self-looping sinks hold strictly more mass than under teleportation.
  PagerankOptions teleport_options;
  teleport_options.dangling = DanglingPolicy::kTeleport;
  PagerankResult teleport_pr =
      Solve(graph, Transition(graph), teleport_options);
  EXPECT_GT(pr.scores[1], teleport_pr.scores[1]);
}

TEST(PagerankTest, DanglingRenormalizePolicyKeepsDistribution) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  CsrGraph graph = BuildOrDie(&builder);
  PagerankOptions options;
  options.dangling = DanglingPolicy::kRenormalize;
  PagerankResult pr = Solve(graph, Transition(graph), options);
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
}

TEST(PagerankTest, PersonalizedTeleportConcentratesNearSeed) {
  // Path 0-1-2-3-4; seed at 0. Scores must decay with distance from seed.
  GraphBuilder builder(5, GraphKind::kUndirected);
  for (NodeId v = 0; v + 1 < 5; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  CsrGraph graph = BuildOrDie(&builder);
  auto teleport = SeededTeleport(5, std::vector<NodeId>{0});
  ASSERT_TRUE(teleport.ok());
  auto pr = SolvePagerank(graph, Transition(graph), *teleport, {});
  ASSERT_TRUE(pr.ok());
  EXPECT_GT(pr->scores[0], pr->scores[2]);
  EXPECT_GT(pr->scores[1], pr->scores[3]);
  EXPECT_GT(pr->scores[3], pr->scores[4]);
}

TEST(PagerankTest, HigherAlphaNeedsMoreIterations) {
  Rng rng(17);
  auto graph = BarabasiAlbert(200, 2, &rng);
  ASSERT_TRUE(graph.ok());
  PagerankOptions low;
  low.alpha = 0.5;
  PagerankOptions high;
  high.alpha = 0.95;
  PagerankResult pr_low = Solve(*graph, Transition(*graph), low);
  PagerankResult pr_high = Solve(*graph, Transition(*graph), high);
  EXPECT_LT(pr_low.iterations, pr_high.iterations);
}

TEST(PagerankTest, MaxIterationsCapReported) {
  Rng rng(19);
  auto graph = BarabasiAlbert(200, 2, &rng);
  ASSERT_TRUE(graph.ok());
  PagerankOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-15;
  PagerankResult pr = Solve(*graph, Transition(*graph), options);
  EXPECT_FALSE(pr.converged);
  EXPECT_EQ(pr.iterations, 2);
  EXPECT_GT(pr.residual, 0.0);
}

TEST(PagerankTest, ResidualDecreasesMonotonicallyInIterationCap) {
  Rng rng(23);
  auto graph = BarabasiAlbert(100, 2, &rng);
  ASSERT_TRUE(graph.ok());
  double last_residual = 1e30;
  for (int cap : {1, 3, 6, 12, 25}) {
    PagerankOptions options;
    options.max_iterations = cap;
    options.tolerance = 1e-15;
    PagerankResult pr = Solve(*graph, Transition(*graph), options);
    EXPECT_LT(pr.residual, last_residual);
    last_residual = pr.residual;
  }
}

TEST(PagerankTest, EmptyGraphConverges) {
  CsrGraph graph;
  auto pr = SolvePagerank(graph, Transition(graph), {});
  ASSERT_TRUE(pr.ok());
  EXPECT_TRUE(pr->converged);
  EXPECT_TRUE(pr->scores.empty());
}

TEST(PagerankValidationTest, RejectsBadOptions) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  CsrGraph graph = BuildOrDie(&builder);
  TransitionMatrix t = Transition(graph);
  PagerankOptions bad_alpha;
  bad_alpha.alpha = 1.0;
  EXPECT_FALSE(SolvePagerank(graph, t, bad_alpha).ok());
  bad_alpha.alpha = -0.1;
  EXPECT_FALSE(SolvePagerank(graph, t, bad_alpha).ok());
  PagerankOptions bad_tol;
  bad_tol.tolerance = 0.0;
  EXPECT_FALSE(SolvePagerank(graph, t, bad_tol).ok());
  PagerankOptions bad_iters;
  bad_iters.max_iterations = 0;
  EXPECT_FALSE(SolvePagerank(graph, t, bad_iters).ok());
}

TEST(PagerankValidationTest, RejectsBadTeleport) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  CsrGraph graph = BuildOrDie(&builder);
  TransitionMatrix t = Transition(graph);
  // Wrong size.
  std::vector<double> short_teleport{1.0};
  EXPECT_FALSE(SolvePagerank(graph, t, short_teleport, {}).ok());
  // Doesn't sum to one.
  std::vector<double> bad_sum{0.7, 0.7};
  EXPECT_FALSE(SolvePagerank(graph, t, bad_sum, {}).ok());
  // Negative entry.
  std::vector<double> negative{1.5, -0.5};
  EXPECT_FALSE(SolvePagerank(graph, t, negative, {}).ok());
}

TEST(PagerankValidationTest, RejectsMismatchedTransition) {
  GraphBuilder a(2, GraphKind::kDirected);
  ASSERT_TRUE(a.AddEdge(0, 1).ok());
  CsrGraph graph_a = BuildOrDie(&a);
  GraphBuilder b(3, GraphKind::kDirected);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  CsrGraph graph_b = BuildOrDie(&b);
  TransitionMatrix t_b = Transition(graph_b);
  EXPECT_FALSE(SolvePagerank(graph_a, t_b, {}).ok());
}

}  // namespace
}  // namespace d2pr
