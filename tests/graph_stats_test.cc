#include "graph/graph_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph Path4() {
  // 0 - 1 - 2 - 3: degrees 1, 2, 2, 1.
  GraphBuilder builder(4, GraphKind::kUndirected);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(GraphStatsTest, PathGraphBasics) {
  GraphStats stats = ComputeGraphStats(Path4());
  EXPECT_EQ(stats.num_nodes, 4);
  EXPECT_EQ(stats.num_edges, 3);
  EXPECT_EQ(stats.num_arcs, 6);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.5);
  // degrees {1,2,2,1}: population stddev = 0.5.
  EXPECT_DOUBLE_EQ(stats.stddev_degree, 0.5);
  EXPECT_EQ(stats.min_degree, 1);
  EXPECT_EQ(stats.max_degree, 2);
  EXPECT_EQ(stats.num_isolated, 0);
  EXPECT_EQ(stats.num_dangling, 0);
}

TEST(GraphStatsTest, PathGraphNeighborSpread) {
  // Neighbor degree lists: node0 -> {2} (sd 0); node1 -> {1,2} (sd .5);
  // node2 -> {2,1} (sd .5); node3 -> {2} (sd 0). Sorted: {0, 0, .5, .5};
  // median = 0.25.
  GraphStats stats = ComputeGraphStats(Path4());
  EXPECT_DOUBLE_EQ(stats.median_neighbor_degree_stddev, 0.25);
}

TEST(GraphStatsTest, StarGraph) {
  constexpr NodeId kLeaves = 10;
  GraphBuilder builder(kLeaves + 1, GraphKind::kUndirected);
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) {
    ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_EQ(stats.max_degree, kLeaves);
  EXPECT_EQ(stats.min_degree, 1);
  // Every leaf sees only the hub (spread 0); the hub sees 10 equal leaves
  // (spread 0) -> median 0.
  EXPECT_DOUBLE_EQ(stats.median_neighbor_degree_stddev, 0.0);
}

TEST(GraphStatsTest, IsolatedAndDanglingCounts) {
  GraphBuilder builder(4, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  // Node 1 is dangling (no out-arcs) but not isolated (has an in-arc);
  // nodes 2 and 3 are both.
  EXPECT_EQ(stats.num_dangling, 3);
  EXPECT_EQ(stats.num_isolated, 2);
}

TEST(GraphStatsTest, EmptyGraph) {
  GraphStats stats = ComputeGraphStats(CsrGraph());
  EXPECT_EQ(stats.num_nodes, 0);
  EXPECT_EQ(stats.num_edges, 0);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.0);
}

TEST(GraphStatsTest, DegreesAsDoubles) {
  const std::vector<double> degrees = DegreesAsDoubles(Path4());
  EXPECT_EQ(degrees, (std::vector<double>{1.0, 2.0, 2.0, 1.0}));
}

TEST(GraphStatsTest, FormatStatsRowContainsFields) {
  GraphStats stats = ComputeGraphStats(Path4());
  const std::string row = FormatStatsRow("path4", stats);
  EXPECT_NE(row.find("path4"), std::string::npos);
  EXPECT_NE(row.find("4"), std::string::npos);
  EXPECT_NE(row.find("1.50"), std::string::npos);
}

}  // namespace
}  // namespace d2pr
