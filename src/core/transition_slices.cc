#include "core/transition_slices.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"

namespace d2pr {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// The O(|V|) per-source state the subgraph path broadcasts: everything a
/// destination shard needs to recompute any in-arc's probability without
/// seeing the source's row. Each field is written only by the source
/// node's owner shard (from its own rows) — the in-process stand-in for
/// a per-key broadcast round.
struct RowState {
  std::vector<double> log_metric;       ///< log(metric(v)); -inf at 0.
  std::vector<double> max_exponent;     ///< Row softmax max.
  std::vector<double> row_sum;          ///< Softmax denominator.
  std::vector<uint8_t> uniform_row;     ///< All-vanished fallback rows.
  std::vector<double> strength_total;   ///< Θ(v); only when beta > 0.
};

/// Allocates slices shaped for `partition` with the dangling view filled
/// from the graph's out-degrees (ascending by construction — the fold
/// order the solvers' bit-parity contract requires).
TransitionSlices ShapedSlices(const CsrGraph& graph,
                              const GraphPartition& partition) {
  TransitionSlices slices;
  slices.num_nodes = graph.num_nodes();
  slices.in_probs.resize(partition.num_shards());
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    slices.in_probs[s].resize(
        static_cast<size_t>(partition.shard(s).num_in_arcs()));
  }
  slices.is_dangling.assign(static_cast<size_t>(graph.num_nodes()), 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.OutDegree(v) == 0) {
      slices.is_dangling[static_cast<size_t>(v)] = 1;
      slices.dangling.push_back(v);
    }
  }
  return slices;
}

}  // namespace

const char* SliceBuildName(SliceBuild build) {
  switch (build) {
    case SliceBuild::kFromMatrix:
      return "matrix";
    case SliceBuild::kSubgraph:
      return "subgraph";
  }
  return "unknown";
}

Result<TransitionSlices> BuildTransitionSlices(
    const GraphPartition& partition, const TransitionMatrix& transition) {
  if (partition.num_nodes() != transition.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.num_nodes(),
               " nodes but transition matrix has ", transition.num_nodes()));
  }
  TransitionSlices slices;
  slices.num_nodes = transition.num_nodes();
  slices.in_probs.resize(partition.num_shards());
  const auto probs = transition.probs();
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    std::vector<double>& slice = slices.in_probs[s];
    slice.resize(shard.in_arc_index.size());
    // A pure permutation copy: position idx of the slice is the
    // probability the sweep used to gather at in_arc_index[idx].
    for (size_t idx = 0; idx < shard.in_arc_index.size(); ++idx) {
      slice[idx] = probs[static_cast<size_t>(shard.in_arc_index[idx])];
    }
  }
  slices.is_dangling.assign(static_cast<size_t>(transition.num_nodes()), 0);
  slices.dangling = transition.DanglingNodes();
  for (NodeId v : slices.dangling) {
    slices.is_dangling[static_cast<size_t>(v)] = 1;
  }
  return slices;
}

Result<TransitionSlices> BuildTransitionSlicesLocal(
    const CsrGraph& graph, const GraphPartition& partition,
    const TransitionConfig& config) {
  D2PR_RETURN_NOT_OK(ValidateTransitionConfig(graph, config));
  if (partition.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.num_nodes(),
               " nodes but the graph has ", graph.num_nodes()));
  }
  const DegreeMetric metric = ResolveMetric(graph, config.metric);
  // Beta folds to 0 on unweighted graphs, exactly as in
  // TransitionMatrix::Build (see the comment there).
  const double beta = graph.weighted() ? config.beta : 0.0;
  const double p = config.p;
  const NodeId n = graph.num_nodes();

  // --- Broadcast state, O(|V|). ---
  // log_metric is the broadcast global-metric vector: row probabilities
  // depend on *destination* metrics, which a shard cannot derive from its
  // own rows (a boundary target's degree is invisible locally).
  RowState state;
  {
    const std::vector<double> metric_values = MetricValues(graph, metric);
    state.log_metric.resize(static_cast<size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      state.log_metric[static_cast<size_t>(v)] =
          metric_values[static_cast<size_t>(v)] > 0.0
              ? std::log(metric_values[static_cast<size_t>(v)])
              : kNegInf;
    }
  }
  state.max_exponent.assign(static_cast<size_t>(n), kNegInf);
  state.row_sum.assign(static_cast<size_t>(n), 0.0);
  state.uniform_row.assign(static_cast<size_t>(n), 0);
  if (beta > 0.0) state.strength_total.assign(static_cast<size_t>(n), 0.0);

  // Pass 1 — every shard normalizes its OWN rows (this loop nests
  // shard-then-owned rather than scanning nodes so the data flow it
  // documents is the distributed one: a shard touches only its rows).
  // The per-arc numerators are recomputed in pass 2 instead of stored:
  // that trades one exp per arc for never holding O(|E|) state.
  const auto targets = graph.targets();
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    for (NodeId i : partition.shard(s).owned) {
      const EdgeIndex begin = graph.ArcBegin(i);
      const EdgeIndex end = begin + graph.OutDegree(i);
      if (begin == end) continue;  // dangling: no row to normalize
      double max_exponent = kNegInf;
      for (EdgeIndex e = begin; e < end; ++e) {
        const NodeId j = targets[static_cast<size_t>(e)];
        max_exponent = std::max(
            max_exponent,
            DecoupledArcExponent(state.log_metric[static_cast<size_t>(j)],
                                 p));
      }
      // Summed in ascending arc order — the same left-to-right fold
      // TransitionMatrix::Build performs, so the denominator is the same
      // double bit for bit.
      double row_sum = 0.0;
      for (EdgeIndex e = begin; e < end; ++e) {
        const NodeId j = targets[static_cast<size_t>(e)];
        row_sum += DecoupledArcNumerator(
            DecoupledArcExponent(state.log_metric[static_cast<size_t>(j)],
                                 p),
            max_exponent);
      }
      if (row_sum == 0.0) {
        // All destinations vanished in the limit (metric 0, p < 0): the
        // row falls back to uniform, mirroring Build.
        state.uniform_row[static_cast<size_t>(i)] = 1;
        row_sum = static_cast<double>(end - begin);
      }
      state.max_exponent[static_cast<size_t>(i)] = max_exponent;
      state.row_sum[static_cast<size_t>(i)] = row_sum;
      if (beta > 0.0) {
        state.strength_total[static_cast<size_t>(i)] = graph.OutStrength(i);
      }
    }
  }

  // Pass 2 — every shard fills its own slice by streaming its in-CSR.
  // Each probability is a pure function of the broadcast state, the
  // destination's log-metric (an owned node), and — for weighted beta
  // blends — the arc's weight, static structure that rides with the
  // in-CSR. The kernel calls are the same out-of-line functions Build
  // uses, so the recomputed numerator and blend match its bits exactly.
  TransitionSlices slices = ShapedSlices(graph, partition);
  const auto weights = graph.weighted() ? graph.weights()
                                        : std::span<const double>{};
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    std::vector<double>& slice = slices.in_probs[s];
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      const NodeId dst = shard.owned[k];
      const double dst_exponent_input =
          state.log_metric[static_cast<size_t>(dst)];
      const EdgeIndex begin = shard.in_offsets[k];
      const EdgeIndex end = shard.in_offsets[k + 1];
      for (EdgeIndex idx = begin; idx < end; ++idx) {
        const NodeId src =
            shard.in_sources[static_cast<size_t>(idx)];
        const size_t si = static_cast<size_t>(src);
        const double numerator =
            state.uniform_row[si]
                ? 1.0
                : DecoupledArcNumerator(
                      DecoupledArcExponent(dst_exponent_input, p),
                      state.max_exponent[si]);
        const double arc_weight =
            beta > 0.0
                ? weights[static_cast<size_t>(
                      shard.in_arc_index[static_cast<size_t>(idx)])]
                : 0.0;
        slice[static_cast<size_t>(idx)] = BlendedArcProb(
            numerator, state.row_sum[si], beta, arc_weight,
            beta > 0.0 ? state.strength_total[si] : 0.0);
      }
    }
  }
  return slices;
}

}  // namespace d2pr
