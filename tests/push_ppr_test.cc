#include "core/push_ppr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

TransitionMatrix Transition(const CsrGraph& graph, double p = 0.0) {
  auto result = TransitionMatrix::Build(graph, {.p = p});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

class PushVsPowerTest : public ::testing::TestWithParam<double> {};

TEST_P(PushVsPowerTest, PushApproximatesPowerIteration) {
  // The forward-push estimate must agree with the power-iteration PPR for
  // any de-coupling weight p, within the epsilon * n guarantee.
  Rng rng(101);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph, GetParam());

  auto teleport = SeededTeleport(graph->num_nodes(),
                                 std::vector<NodeId>{5});
  ASSERT_TRUE(teleport.ok());
  PagerankOptions exact_options;
  exact_options.tolerance = 1e-13;
  exact_options.max_iterations = 500;
  auto exact = SolvePagerank(*graph, t, *teleport, exact_options);
  ASSERT_TRUE(exact.ok());

  PushOptions push_options;
  push_options.epsilon = 1e-8;
  auto push = ForwardPushPpr(*graph, t, 5, push_options);
  ASSERT_TRUE(push.ok());
  EXPECT_TRUE(push->completed);
  EXPECT_NEAR(DiffL1(push->scores, exact->scores),
              0.0, 1e-8 * graph->num_nodes() * 2);
}

INSTANTIATE_TEST_SUITE_P(PGrid, PushVsPowerTest,
                         ::testing::Values(-2.0, -1.0, 0.0, 0.5, 2.0));

TEST(PushPprTest, ResidualsBelowEpsilonOnCompletion) {
  Rng rng(103);
  auto graph = ErdosRenyi(200, 800, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PushOptions options;
  options.epsilon = 1e-6;
  auto push = ForwardPushPpr(*graph, t, 0, options);
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE(push->completed);
  for (double r : push->residual) EXPECT_LE(r, options.epsilon + 1e-15);
}

TEST(PushPprTest, MassConservation) {
  // estimate + residual mass accounts for everything injected so far:
  // ||scores||_1 / (1 - alpha)-discounted plus residual equals 1 in the
  // no-dangling case.
  Rng rng(104);
  auto graph = BarabasiAlbert(150, 2, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PushOptions options;
  options.alpha = 0.85;
  options.epsilon = 1e-7;
  auto push = ForwardPushPpr(*graph, t, 3, options);
  ASSERT_TRUE(push.ok());
  // Total PPR mass is 1; the estimate is missing at most the residual's
  // discounted future contribution.
  const double estimate_mass = Sum(push->scores);
  EXPECT_LE(estimate_mass, 1.0 + 1e-9);
  EXPECT_GT(estimate_mass, 0.99);
}

TEST(PushPprTest, SeedDominatesScores) {
  Rng rng(105);
  auto graph = WattsStrogatz(120, 3, 0.05, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  auto push = ForwardPushPpr(*graph, t, 60, {});
  ASSERT_TRUE(push.ok());
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    if (v != 60) {
      EXPECT_GE(push->scores[60], push->scores[v]);
    }
  }
}

TEST(PushPprTest, DistributionSeed) {
  Rng rng(106);
  auto graph = ErdosRenyi(100, 400, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  std::vector<double> seed(100, 0.0);
  seed[10] = 0.5;
  seed[20] = 0.5;
  auto push = ForwardPushPpr(*graph, t, seed, {});
  ASSERT_TRUE(push.ok());
  EXPECT_GT(push->scores[10], 0.0);
  EXPECT_GT(push->scores[20], 0.0);
}

TEST(PushPprTest, DanglingReinjection) {
  // 0 -> 1 -> (sink). With reinjection the sink's mass flows back to the
  // seed; without, it is dropped and the estimate mass is smaller.
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PushOptions with;
  with.reinject_dangling = true;
  with.epsilon = 1e-10;
  PushOptions without;
  without.reinject_dangling = false;
  without.epsilon = 1e-10;
  auto push_with = ForwardPushPpr(*graph, t, 0, with);
  auto push_without = ForwardPushPpr(*graph, t, 0, without);
  ASSERT_TRUE(push_with.ok());
  ASSERT_TRUE(push_without.ok());
  EXPECT_GT(Sum(push_with->scores), Sum(push_without->scores));
}

TEST(PushPprTest, MaxPushesCapReported) {
  Rng rng(107);
  auto graph = BarabasiAlbert(500, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PushOptions options;
  options.epsilon = 1e-12;
  options.max_pushes = 10;
  auto push = ForwardPushPpr(*graph, t, 0, options);
  ASSERT_TRUE(push.ok());
  EXPECT_FALSE(push->completed);
  EXPECT_LE(push->pushes, 10);
}

TEST(PushPprTest, DefaultCapScalesWithGraphSizeAndHasAFloor) {
  // The default cap is explicit API now: 512 pushes per node with a
  // 1024-node floor, so tiny graphs still get enough budget to drain a
  // pathological epsilon before the cap fires.
  EXPECT_EQ(DefaultPushCap(0), int64_t{512} * 1024);
  EXPECT_EQ(DefaultPushCap(100), int64_t{512} * 1024);
  EXPECT_EQ(DefaultPushCap(1024), int64_t{512} * 1024);
  EXPECT_EQ(DefaultPushCap(100000), int64_t{512} * 100000);
}

TEST(PushPprTest, DefaultCapAppliesWhenUnset) {
  // max_pushes <= 0 selects the default cap rather than an unbounded
  // solve; a reasonable epsilon finishes far below it, completed = true.
  Rng rng(109);
  auto graph = ErdosRenyi(100, 400, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PushOptions options;
  options.max_pushes = -1;
  auto push = ForwardPushPpr(*graph, t, 0, options);
  ASSERT_TRUE(push.ok());
  EXPECT_TRUE(push->completed);
  EXPECT_LT(push->pushes, DefaultPushCap(graph->num_nodes()));
}

TEST(PushPprTest, SinglePushBudgetReturnsPartialState) {
  // The smallest possible budget still yields a usable partial result:
  // exactly one push, honest completed = false, and the seed's estimate
  // already holds that push's (1 - alpha) deposit.
  Rng rng(110);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PushOptions options;
  options.max_pushes = 1;
  auto push = ForwardPushPpr(*graph, t, 0, options);
  ASSERT_TRUE(push.ok());
  EXPECT_FALSE(push->completed);
  EXPECT_EQ(push->pushes, 1);
  EXPECT_GT(push->scores[0], 0.0);
}

TEST(PushPprTest, ValidationErrors) {
  Rng rng(108);
  auto graph = ErdosRenyi(10, 20, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  EXPECT_FALSE(ForwardPushPpr(*graph, t, NodeId{99}, {}).ok());
  PushOptions bad_alpha;
  bad_alpha.alpha = 1.0;
  EXPECT_FALSE(ForwardPushPpr(*graph, t, 0, bad_alpha).ok());
  PushOptions bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_FALSE(ForwardPushPpr(*graph, t, 0, bad_eps).ok());
  std::vector<double> bad_seed(10, 0.2);  // sums to 2
  EXPECT_FALSE(ForwardPushPpr(*graph, t, bad_seed, {}).ok());
}

}  // namespace
}  // namespace d2pr
