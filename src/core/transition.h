// Degree de-coupled transition models (the paper's Section 3).
//
// A TransitionMatrix holds, for every arc (i -> j) of a CsrGraph, the
// random-walk probability T(j, i) of stepping from i to j. The library
// builds it from a TransitionConfig implementing the paper's three model
// families:
//
//   * Conventional PageRank        p = 0 (or beta = 1 on weighted graphs)
//   * D2PR, undirected/unweighted  T_D(j,i) ∝ deg(v_j)^-p            (Eq. 1)
//   * D2PR, directed/unweighted    T_D(j,i) ∝ outdeg(v_j)^-p         (§3.2.2)
//   * D2PR, weighted               T = β·T_conn + (1-β)·T_D,
//                                  T_D(j,i) ∝ Θ(v_j)^-p,
//                                  Θ(v) = Σ out-weights of v          (§3.2.3)
//
// Numerical robustness: metric^-p is evaluated in log space with per-row
// max subtraction, so any real p (including |p| ≫ 1, the desideratum's
// limit cases) produces finite, normalized probabilities. A destination
// with metric 0 (a directed sink) is treated as the limit: it captures the
// whole row for p > 0 and gets probability 0 for p < 0.

#ifndef D2PR_CORE_TRANSITION_H_
#define D2PR_CORE_TRANSITION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace d2pr {

class TransitionStore;

/// \brief Which destination quantity is raised to the power -p.
enum class DegreeMetric {
  /// Resolve from the graph: out-strength Θ for weighted graphs,
  /// out-degree otherwise (== degree for undirected graphs).
  kAuto,
  /// Destination out-degree (paper's directed and undirected models).
  kOutDegree,
  /// Destination out-strength Θ (paper's weighted model).
  kOutStrength,
  /// Destination in-degree: an extension useful on directed graphs where
  /// popularity (in-links) rather than activity (out-links) should be
  /// de-coupled.
  kInDegree,
};

/// \brief Parameters of the transition model.
struct TransitionConfig {
  /// Degree de-coupling weight. 0 = conventional PageRank; > 0 penalizes
  /// high-degree destinations; < 0 boosts them.
  double p = 0.0;
  /// Blend between connection strength (β = 1, conventional weighted
  /// PageRank) and degree de-coupling (β = 0, full de-coupling; the paper's
  /// default). Only meaningful on weighted graphs; ignored (treated as 0)
  /// on unweighted graphs, whose T_conn equals T_D at p = 0 anyway.
  double beta = 0.0;
  DegreeMetric metric = DegreeMetric::kAuto;
};

/// \brief Column-stochastic sparse transition matrix aligned with a graph's
/// CSR arcs.
///
/// probs()[e] is the probability of the arc stored at index e in the graph:
/// for every non-dangling source i, the probabilities of i's arcs sum to 1.
class TransitionMatrix {
 public:
  /// Builds the transition matrix for `graph` under `config`.
  ///
  /// Returns InvalidArgument when beta is outside [0, 1], when the metric is
  /// incompatible with the graph (kOutStrength on an unweighted graph), or
  /// when p is not finite.
  static Result<TransitionMatrix> Build(const CsrGraph& graph,
                                        const TransitionConfig& config);

  /// Process-wide count of successful Build() materializations. A test
  /// seam: the partition suites prove the subgraph slice path
  /// (core/transition_slices.h) never materializes a whole-graph matrix
  /// by asserting this counter stays put across a local slice build.
  static uint64_t BuildCount();

  // Storage is either owned vectors (Build) or spans into an external
  // backing such as the persistent store's mmap pages (TransitionStore).
  // Moves keep the spans valid (vector buffers survive moves); copies
  // would not, and nothing needs them — matrices are shared via
  // shared_ptr<const TransitionMatrix>.
  TransitionMatrix(TransitionMatrix&&) noexcept = default;
  TransitionMatrix& operator=(TransitionMatrix&&) noexcept = default;
  TransitionMatrix(const TransitionMatrix&) = delete;
  TransitionMatrix& operator=(const TransitionMatrix&) = delete;

  /// Number of nodes of the underlying graph.
  NodeId num_nodes() const { return num_nodes_; }

  /// Per-arc probabilities, aligned with CsrGraph::targets().
  std::span<const double> probs() const { return probs_; }

  /// True if node `v` has no outgoing arcs (its column is all zero).
  bool IsDangling(NodeId v) const { return dangling_[v] != 0; }

  /// Indices of dangling nodes.
  std::vector<NodeId> DanglingNodes() const;

  /// Sparse matrix-vector product: out[j] = Σ_i T(j, i) · x[i].
  /// Dangling columns contribute nothing (the solver redistributes their
  /// mass according to its dangling policy). Sizes must equal num_nodes().
  void Multiply(const CsrGraph& graph, std::span<const double> x,
                std::span<double> out) const;

  /// Probability of the arc (u -> v); 0 when absent. O(log deg) lookup for
  /// tests and examples, not for inner loops.
  double Prob(const CsrGraph& graph, NodeId u, NodeId v) const;

 private:
  /// The store constructs mmap-backed instances via the span constructor
  /// and serializes the private sections byte-exactly.
  friend class TransitionStore;

  TransitionMatrix(NodeId num_nodes, std::vector<double> probs,
                   std::vector<uint8_t> dangling)
      : num_nodes_(num_nodes),
        owned_probs_(std::move(probs)),
        owned_dangling_(std::move(dangling)),
        probs_(owned_probs_),
        dangling_(owned_dangling_) {}

  /// Wraps externally owned storage; `backing` keeps the spans alive for
  /// the matrix's lifetime (the store passes the mmap-ed file).
  TransitionMatrix(NodeId num_nodes, std::span<const double> probs,
                   std::span<const uint8_t> dangling,
                   std::shared_ptr<const void> backing)
      : num_nodes_(num_nodes),
        probs_(probs),
        dangling_(dangling),
        backing_(std::move(backing)) {}

  NodeId num_nodes_;
  std::vector<double> owned_probs_;      // empty when externally backed
  std::vector<uint8_t> owned_dangling_;  // empty when externally backed
  std::span<const double> probs_;
  std::span<const uint8_t> dangling_;
  std::shared_ptr<const void> backing_;  // null when self-owned
};

/// \brief Resolves DegreeMetric::kAuto for a graph; other values pass
/// through unchanged.
DegreeMetric ResolveMetric(const CsrGraph& graph, DegreeMetric metric);

/// \brief Metric resolution from weightedness alone — kAuto resolves to
/// kOutStrength iff `weighted`. The graph overload delegates here;
/// consumers that hold a shard cut instead of a CsrGraph (ShardWorker's
/// --shard-file path) resolve from the cut's metadata and MUST agree
/// bitwise with the graph path.
DegreeMetric ResolveMetric(bool weighted, DegreeMetric metric);

/// \brief The metric values deg/outdeg/Θ/indeg per node, as configured.
/// These are the quantities raised to -p in the D2PR formulas.
std::vector<double> MetricValues(const CsrGraph& graph, DegreeMetric metric);

/// \brief Validates a TransitionConfig against a graph — the exact checks
/// TransitionMatrix::Build performs (finite p, beta in [0, 1], metric
/// compatible with weightedness), shared with the partition slice builder
/// so both construction paths reject identical inputs with identical
/// messages.
Status ValidateTransitionConfig(const CsrGraph& graph,
                                const TransitionConfig& config);

/// \brief The same validation from weightedness alone (identical checks,
/// identical messages) — the graph overload delegates here. Used by the
/// cut-loaded slice builder, where no CsrGraph exists.
Status ValidateTransitionConfig(bool weighted, const TransitionConfig& config);

// --- The per-arc arithmetic of the de-coupled model, factored out. ---
//
// TransitionMatrix::Build and the partition slice builder
// (core/transition_slices.h) must produce bitwise-equal probabilities for
// every arc; the slice builder recomputes row entries in pull (in-CSR)
// order instead of row order, so the arithmetic cannot live inline in
// Build's loop. These are deliberately defined out-of-line in
// transition.cc: one machine-code instance means no call site can differ
// by FP contraction, which would silently break the bit-parity contract.

/// \brief Softmax exponent of one arc: -p * log(metric(target)), with the
/// metric-0 limit semantics (`log_metric_target == -inf`): the target
/// dominates the row for p > 0 (+inf), vanishes for p < 0 (-inf), and is
/// neutral for p = 0 (0^0 := 1).
double DecoupledArcExponent(double log_metric_target, double p);

/// \brief Unnormalized softmax weight of one arc given its row's max
/// exponent: rows containing a +inf exponent split among their +inf arcs
/// (1 vs 0); -inf arcs vanish; finite arcs get exp(exponent - max).
double DecoupledArcNumerator(double exponent, double max_exponent);

/// \brief Final arc probability: the de-coupled component
/// numerator / row_sum, beta-blended with the connection-strength
/// component weight / strength_total when beta > 0.
double BlendedArcProb(double numerator, double row_sum, double beta,
                      double arc_weight, double strength_total);

}  // namespace d2pr

#endif  // D2PR_CORE_TRANSITION_H_
