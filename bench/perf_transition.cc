// Microbenchmarks for transition-matrix construction, including the
// ablation DESIGN.md calls out: log-space softmax normalization (robust to
// any p, used by the library) versus the naive metric^-p formula (faster
// per-row for small |p| but overflows for large degree·|p|).

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "core/transition.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph MakeGraph(int64_t nodes) {
  Rng rng(7);
  auto graph = BarabasiAlbert(static_cast<NodeId>(nodes), 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

void BM_BuildConventional(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto t = TransitionMatrix::Build(graph, {.p = 0.0});
    benchmark::DoNotOptimize(t->probs().data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_arcs());
}
BENCHMARK(BM_BuildConventional)->Arg(10000)->Arg(100000);

void BM_BuildDecoupled(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto t = TransitionMatrix::Build(graph, {.p = 0.5});
    benchmark::DoNotOptimize(t->probs().data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_arcs());
}
BENCHMARK(BM_BuildDecoupled)->Arg(10000)->Arg(100000);

// Ablation baseline: direct pow() per arc without log-space protection.
// Numerically identical to the library for moderate |p| but overflows
// double once deg^|p| exceeds ~1e308 (e.g. deg 1000, |p| 103).
std::vector<double> NaivePowTransition(const CsrGraph& graph, double p) {
  const NodeId n = graph.num_nodes();
  std::vector<double> metric(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    metric[static_cast<size_t>(v)] =
        std::pow(static_cast<double>(graph.OutDegree(v)), -p);
  }
  std::vector<double> probs(static_cast<size_t>(graph.num_arcs()));
  for (NodeId i = 0; i < n; ++i) {
    const EdgeIndex begin = graph.ArcBegin(i);
    const EdgeIndex end = begin + graph.OutDegree(i);
    double total = 0.0;
    for (EdgeIndex e = begin; e < end; ++e) {
      total += metric[static_cast<size_t>(
          graph.targets()[static_cast<size_t>(e)])];
    }
    for (EdgeIndex e = begin; e < end; ++e) {
      probs[static_cast<size_t>(e)] =
          metric[static_cast<size_t>(
              graph.targets()[static_cast<size_t>(e)])] /
          total;
    }
  }
  return probs;
}

void BM_AblationNaivePow(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto probs = NaivePowTransition(graph, 0.5);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_arcs());
}
BENCHMARK(BM_AblationNaivePow)->Arg(10000)->Arg(100000);

void BM_BuildWeightedBlend(benchmark::State& state) {
  Rng rng(11);
  auto unweighted = BarabasiAlbert(20000, 4, &rng);
  D2PR_CHECK(unweighted.ok());
  // Re-add with random weights.
  GraphBuilder builder(unweighted->num_nodes(), GraphKind::kUndirected,
                       /*weighted=*/true);
  for (NodeId u = 0; u < unweighted->num_nodes(); ++u) {
    for (NodeId v : unweighted->OutNeighbors(u)) {
      if (v > u) {
        D2PR_CHECK(builder.AddEdge(u, v, 1.0 + rng.Uniform() * 9.0).ok());
      }
    }
  }
  auto graph = builder.Build();
  D2PR_CHECK(graph.ok());
  for (auto _ : state) {
    auto t = TransitionMatrix::Build(*graph, {.p = 0.5, .beta = 0.5});
    benchmark::DoNotOptimize(t->probs().data());
  }
  state.SetItemsProcessed(state.iterations() * graph->num_arcs());
}
BENCHMARK(BM_BuildWeightedBlend);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
