#include "net/server.h"

#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "serve/engine_router.h"
#include "serve/score_cache.h"
#include "serve/serving_runtime.h"

namespace d2pr {
namespace {

constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

class RuntimeBackend final : public RankBackend {
 public:
  explicit RuntimeBackend(ServingRuntime& runtime) : runtime_(runtime) {}

  void RankAsync(RankRequest request,
                 std::function<void(Result<RankResponse>)> done,
                 std::function<Status()> gate) override {
    runtime_.RankAsync(std::move(request), std::move(done), std::move(gate));
  }
  int64_t queue_depth() override { return runtime_.pool().queue_depth(); }
  ServerInfo info() override {
    ServerInfo info;
    info.num_nodes = static_cast<uint64_t>(runtime_.engine().graph().num_nodes());
    info.num_arcs = static_cast<uint64_t>(runtime_.engine().graph().num_arcs());
    info.num_shards = 1;
    info.num_threads = runtime_.num_threads();
    return info;
  }

 private:
  ServingRuntime& runtime_;
};

class RouterBackend final : public RankBackend {
 public:
  explicit RouterBackend(EngineRouter& router) : router_(router) {}

  void RankAsync(RankRequest request,
                 std::function<void(Result<RankResponse>)> done,
                 std::function<Status()> gate) override {
    router_.RankAsync(std::move(request), std::move(done), std::move(gate));
  }
  int64_t queue_depth() override { return router_.pool().queue_depth(); }
  ServerInfo info() override {
    ServerInfo info;
    info.num_nodes = static_cast<uint64_t>(router_.graph().num_nodes());
    info.num_arcs = static_cast<uint64_t>(router_.graph().num_arcs());
    info.num_shards = router_.num_shards();
    info.num_threads = router_.num_worker_threads();
    return info;
  }

 private:
  EngineRouter& router_;
};

}  // namespace

std::unique_ptr<RankBackend> MakeBackend(ServingRuntime& runtime) {
  return std::make_unique<RuntimeBackend>(runtime);
}

std::unique_ptr<RankBackend> MakeBackend(EngineRouter& router) {
  return std::make_unique<RouterBackend>(router);
}

void RpcServer::Connection::EnqueueWrite(std::vector<uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed) return;  // late completion for a dead connection
    write_queue.push_back(std::move(frame));
  }
  write_cv.notify_one();
}

void RpcServer::Connection::SealWrites() {
  {
    std::lock_guard<std::mutex> lock(write_mu);
    closed = true;
  }
  write_cv.notify_all();
}

void RpcServer::Connection::Close() {
  SealWrites();
  socket.ShutdownBoth();
}

RpcServer::RpcServer(RankBackend& backend, const ServerOptions& options)
    : backend_(backend), options_(options) {}

RpcServer::~RpcServer() { Stop(); }

int64_t RpcServer::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status RpcServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  auto listener = ListenSocket::Listen(options_.port);
  if (!listener.ok()) {
    started_.store(false);
    return listener.status();
  }
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) {
    // A concurrent or repeated Stop: the first caller owns the teardown;
    // wait for it by joining on the accept thread being gone.
    return;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Stop the intake side first: readers see EOF and exit, so no new
  // requests can enter the backend after the joins below...
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections = connections_;
  }
  for (const auto& connection : connections) {
    connection->socket.ShutdownRead();
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  // ...then let every admitted solve finish and enqueue its reply...
  {
    std::unique_lock<std::mutex> lock(pending_mu_);
    pending_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  // ...then seal the write queues WITHOUT shutting the sockets: the
  // writers flush everything already queued (the replies the pending-
  // drain above guaranteed) and exit on the closed flag. Only after the
  // writers are gone do the sockets shut down — shutting down first
  // would EPIPE the very responses the drain waited for. The cost is
  // that a peer who stopped reading can stall Stop() in a blocked send;
  // the front door serves cooperating clients, not adversarial ones.
  for (const auto& connection : connections) {
    connection->SealWrites();
  }
  for (const auto& connection : connections) {
    if (connection->writer.joinable()) connection->writer.join();
  }
  for (const auto& connection : connections) {
    connection->socket.ShutdownBoth();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.clear();
  }
}

void RpcServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Shutdown (normal exit) and hard listener errors end the loop the
      // same way; Stop() owns the cleanup either way.
      return;
    }
    if (stopping_.load()) return;
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(accepted).value();
    ++stats_.connections_accepted;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(connection);
    }
    connection->reader = std::thread([this, connection] {
      ReaderLoop(connection);
    });
    connection->writer = std::thread([this, connection] {
      WriterLoop(connection);
    });
  }
}

void RpcServer::ReaderLoop(const std::shared_ptr<Connection>& connection) {
  std::vector<uint8_t> header(kFrameHeaderBytes);
  for (;;) {
    bool clean_eof = false;
    Status received = connection->socket.RecvExact(header.data(),
                                                   header.size(), &clean_eof);
    if (!received.ok()) {
      // EOF at a frame boundary is a client hanging up normally; EOF or
      // an error mid-header is a truncated frame.
      if (!clean_eof) ++stats_.protocol_errors;
      break;
    }
    auto decoded = DecodeFrameHeader(header);
    if (!decoded.ok()) {
      // The stream is not speaking this protocol; nothing sent after
      // this point could be trusted, so drop the connection.
      ++stats_.protocol_errors;
      break;
    }
    const FrameHeader frame = decoded.value();
    std::vector<uint8_t> payload(frame.payload_len);
    if (frame.payload_len > 0) {
      received = connection->socket.RecvExact(payload.data(), payload.size());
      if (!received.ok()) {
        ++stats_.protocol_errors;
        break;
      }
    }
    switch (frame.type) {
      case FrameType::kInfoRequest: {
        connection->EnqueueWrite(EncodeFrame(FrameType::kInfoResponse,
                                             frame.request_id,
                                             EncodeServerInfo(backend_.info())));
        ++stats_.responses_sent;
        break;
      }
      case FrameType::kRankRequest: {
        auto request = DecodeRankRequest(payload);
        if (!request.ok()) {
          // The framing is intact — only this request is bad. Tell the
          // client and keep serving the connection.
          ++stats_.decode_errors;
          connection->EnqueueWrite(
              EncodeFrame(FrameType::kStatus, frame.request_id,
                          EncodeStatusPayload(request.status())));
          ++stats_.responses_sent;
          break;
        }
        ++stats_.requests_received;
        HandleRank(connection, frame.request_id,
                   std::move(request).value());
        break;
      }
      default: {
        // Server-to-client frame types arriving at the server mean the
        // peer is confused; treat like any other framing violation.
        ++stats_.protocol_errors;
        connection->Close();
        return;
      }
    }
  }
  // A client hanging up mid-service takes its connection down with it —
  // late completions are swallowed by the closed flag. During Stop() the
  // read side was shut down by the server itself; there Close() must NOT
  // run, or it would drop the admitted responses Stop()'s pending-drain
  // is about to deliver (Stop seals and flushes instead).
  if (!stopping_.load()) connection->Close();
}

void RpcServer::WriterLoop(const std::shared_ptr<Connection>& connection) {
  for (;;) {
    std::vector<uint8_t> frame;
    {
      std::unique_lock<std::mutex> lock(connection->write_mu);
      connection->write_cv.wait(lock, [&] {
        return connection->closed || !connection->write_queue.empty();
      });
      if (connection->write_queue.empty()) return;  // closed and drained
      frame = std::move(connection->write_queue.front());
      connection->write_queue.pop_front();
    }
    Status sent = connection->socket.SendAll(frame.data(), frame.size());
    if (!sent.ok()) {
      connection->Close();
      return;
    }
  }
}

void RpcServer::HandleRank(const std::shared_ptr<Connection>& connection,
                           uint64_t request_id, WireRankRequest wire) {
  const bool deadlined = wire.deadline_ms > 0;
  // Clock read 1 of 3: stamp the absolute deadline at admission.
  const int64_t deadline_ms =
      deadlined ? NowMs() + static_cast<int64_t>(wire.deadline_ms)
                : kNoDeadline;
  Waiter waiter{connection, request_id, deadline_ms};

  // Warm-tagged requests mutate trajectory state per call — two of them
  // are not interchangeable even with identical fields — so only
  // untagged requests coalesce (the same rule ScoreCache applies).
  const bool coalescable =
      options_.coalesce && wire.request.warm_start_tag.empty();
  const std::string key =
      coalescable ? ScoreCache::KeyFor(wire.request) : std::string();
  {
    // One critical section for find + admission + insert: two identical
    // concurrent requests either coalesce or the second is admitted on
    // its own; they can never both slip past the map and double-solve.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (coalescable) {
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // Joining adds no pool work, so it bypasses admission control.
        it->second.waiters.push_back(std::move(waiter));
        ++stats_.coalesce_joins;
        return;
      }
    }
    if (backend_.queue_depth() >= options_.max_queue_depth) {
      ++stats_.shed_unavailable;
      connection->EnqueueWrite(EncodeFrame(
          FrameType::kUnavailable, request_id,
          EncodeStatusPayload(Status::Unavailable(
              "server overloaded (admission queue full); retry later"))));
      ++stats_.responses_sent;
      return;
    }
    if (coalescable) {
      inflight_.emplace(key, Inflight{{waiter}});
    }
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_;
  }
  // Notify UNDER the mutex: Stop() destroys pending_cv_ right after its
  // wait sees pending_ == 0, and it can only evaluate that predicate
  // once this lock is released — which orders the notify_all strictly
  // before any teardown. Notifying outside the lock leaves a window
  // where the last decrement wakes Stop() (spuriously or via another
  // completion) and the cv is destroyed mid-notify.
  auto finish_pending = [this] {
    std::lock_guard<std::mutex> lock(pending_mu_);
    --pending_;
    pending_cv_.notify_all();
  };

  // Clock read 2 of 3 happens inside this gate, on the worker, at the
  // last moment before the solve would start. A coalesced entry is gated
  // by its leader's deadline — joiners with longer deadlines accept the
  // leader's expiry (they joined a solve that died; a retry re-solves).
  std::function<Status()> gate;
  if (deadlined) {
    gate = [this, deadline_ms]() -> Status {
      if (NowMs() > deadline_ms) {
        ++stats_.deadline_expired_presolve;
        return Status::DeadlineExceeded(
            "deadline expired before the solve started");
      }
      return Status::OK();
    };
  }

  if (coalescable) {
    backend_.RankAsync(
        std::move(wire.request),
        [this, key, finish_pending](Result<RankResponse> result) {
          CompleteRank(key, result);
          finish_pending();
        },
        std::move(gate));
  } else {
    backend_.RankAsync(
        std::move(wire.request),
        [this, waiter = std::move(waiter),
         finish_pending](Result<RankResponse> result) {
          DeliverTo(waiter, result);
          finish_pending();
        },
        std::move(gate));
  }
}

void RpcServer::CompleteRank(const std::string& key,
                             const Result<RankResponse>& result) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      waiters = std::move(it->second.waiters);
      inflight_.erase(it);
    }
  }
  for (const Waiter& waiter : waiters) {
    DeliverTo(waiter, result);
  }
}

void RpcServer::DeliverTo(const Waiter& waiter,
                          const Result<RankResponse>& result) {
  // Clock read 3 of 3: a response that can no longer arrive in time is
  // not a response — replace it. A gate rejection stays what it is (the
  // presolve counter already recorded it).
  bool expired_at_delivery = false;
  if (waiter.deadline_ms != kNoDeadline && NowMs() > waiter.deadline_ms) {
    expired_at_delivery =
        result.ok() || result.status().code() != StatusCode::kDeadlineExceeded;
  }
  std::vector<uint8_t> frame;
  if (expired_at_delivery) {
    ++stats_.deadline_expired_delivery;
    frame = EncodeFrame(FrameType::kStatus, waiter.request_id,
                        EncodeStatusPayload(Status::DeadlineExceeded(
                            "deadline expired before response delivery")));
  } else if (result.ok()) {
    frame = EncodeFrame(FrameType::kRankResponse, waiter.request_id,
                        EncodeRankResponse(result.value()));
  } else {
    frame = EncodeFrame(FrameType::kStatus, waiter.request_id,
                        EncodeStatusPayload(result.status()));
  }
  waiter.connection->EnqueueWrite(std::move(frame));
  ++stats_.responses_sent;
}

}  // namespace d2pr
