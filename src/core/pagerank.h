// Power-iteration PageRank solver over a TransitionMatrix.
//
// Solves the paper's fixed point  ~d = α·T_D·~d + (1-α)·~t  by iterating the
// recurrence until the L1 change falls below a tolerance. Dangling nodes
// (empty transition columns) are handled by a configurable policy; the
// default re-injects their mass through the teleportation vector, the
// standard stochastic completion.

#ifndef D2PR_CORE_PAGERANK_H_
#define D2PR_CORE_PAGERANK_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/transition.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief What to do with random-walk mass at nodes without out-arcs.
enum class DanglingPolicy {
  /// Redistribute dangling mass through the teleport vector (default;
  /// preserves Σ scores = 1 exactly).
  kTeleport,
  /// Dangling nodes hold their mass (behave as self-loops).
  kSelfLoop,
  /// Dangling mass is dropped and the iterate is L1-renormalized. Matches
  /// implementations that simply ignore sinks.
  kRenormalize,
};

/// \brief Solver parameters.
struct PagerankOptions {
  /// Residual probability α of following an arc; 1-α teleports. The paper
  /// varies α in [0.5, 0.9] with default 0.85.
  double alpha = 0.85;
  /// Convergence threshold on the L1 change between iterates.
  double tolerance = 1e-10;
  /// Iteration cap; the solve reports converged = false when hit.
  int max_iterations = 200;
  DanglingPolicy dangling = DanglingPolicy::kTeleport;
};

/// \brief Solver output.
struct PagerankResult {
  std::vector<double> scores;  ///< Stationary scores, Σ = 1.
  int iterations = 0;          ///< Iterations actually performed.
  bool converged = false;      ///< Whether tolerance was reached.
  double residual = 0.0;       ///< Final L1 change.
};

/// \brief Validates solver options (alpha in [0, 1), tolerance > 0,
/// max_iterations >= 1). One copy of these checks — and their message
/// strings — shared by the power, Gauss-Seidel, and block solvers.
Status ValidatePagerankOptions(const PagerankOptions& options);

/// \brief Validates a teleport vector against a node count: exact size,
/// non-negative entries, sum 1 within 1e-9. Shared like
/// ValidatePagerankOptions.
Status ValidateTeleportVector(std::span<const double> teleport,
                              NodeId num_nodes);

/// \brief Runs power iteration with an explicit teleport vector.
///
/// Requirements (else InvalidArgument): alpha in [0, 1); tolerance > 0;
/// max_iterations >= 1; teleport.size() == num nodes; teleport entries
/// non-negative summing to 1 (within 1e-9).
Result<PagerankResult> SolvePagerank(const CsrGraph& graph,
                                     const TransitionMatrix& transition,
                                     std::span<const double> teleport,
                                     const PagerankOptions& options);

/// \brief Warm-started power iteration: begins from `initial` instead of
/// the teleport vector. The fixed point is unique (the iteration is a
/// contraction for alpha < 1), so the answer is independent of the start —
/// but a nearby start (e.g. the previous point of a p-sweep) converges in
/// far fewer iterations. `initial` must be a distribution over the nodes.
Result<PagerankResult> SolvePagerankFrom(const CsrGraph& graph,
                                         const TransitionMatrix& transition,
                                         std::span<const double> teleport,
                                         std::span<const double> initial,
                                         const PagerankOptions& options);

/// \brief Convenience overload with the uniform teleport ~t[i] = 1/|V|.
Result<PagerankResult> SolvePagerank(const CsrGraph& graph,
                                     const TransitionMatrix& transition,
                                     const PagerankOptions& options = {});

}  // namespace d2pr

#endif  // D2PR_CORE_PAGERANK_H_
