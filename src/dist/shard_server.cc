#include "dist/shard_server.h"

#include <span>
#include <utility>
#include <vector>

#include "dist/channel.h"
#include "net/wire.h"

namespace d2pr {

ShardServer::ShardServer(ShardWorker& worker,
                         const ShardServerOptions& options)
    : worker_(worker), options_(options) {}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("shard server already started");
  }
  D2PR_ASSIGN_OR_RETURN(listener_, ListenSocket::Listen(options_.port));
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->socket.ShutdownBoth();
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void ShardServer::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // Shutdown() unblocked us
    auto connection = std::make_shared<Connection>();
    connection->socket = std::move(*accepted);
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    const uint64_t session_id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      if (stopping_.load()) {
        connection->socket.ShutdownBoth();
        return;
      }
      connection->thread = std::thread(
          [this, connection, session_id] {
            ServeConnection(connection, session_id);
          });
      connections_.push_back(connection);
    }
  }
}

void ShardServer::ServeConnection(
    const std::shared_ptr<Connection>& connection, uint64_t session_id) {
  for (;;) {
    uint8_t header_bytes[kFrameHeaderBytes];
    bool clean_eof = false;
    if (!connection->socket
             .RecvExact(header_bytes, sizeof(header_bytes), &clean_eof)
             .ok()) {
      break;  // peer gone (clean EOF) or stream dead
    }
    Result<FrameHeader> header = DecodeFrameHeader(
        std::span<const uint8_t>(header_bytes, sizeof(header_bytes)));
    if (!header.ok()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    ShardFrame request;
    request.type = header->type;
    request.request_id = header->request_id;
    request.payload.resize(header->payload_len);
    if (header->payload_len > 0 &&
        !connection->socket
             .RecvExact(request.payload.data(), request.payload.size())
             .ok()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    const bool was_handshake = request.type == FrameType::kShardHandshake;
    Result<ShardFrame> reply = worker_.Handle(request, session_id);
    if (!reply.ok()) {
      // A frame this service cannot answer at all: the stream is
      // confused about who it is talking to.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    const std::vector<uint8_t> frame =
        EncodeFrame(reply->type, reply->request_id, reply->payload);
    if (!connection->socket.SendAll(frame.data(), frame.size()).ok()) {
      break;
    }
    stats_.frames_handled.fetch_add(1, std::memory_order_relaxed);
    if (was_handshake && reply->type == FrameType::kStatus) {
      // Rejected identity declaration: close only this connection (the
      // reply already carries the distinct status code).
      stats_.handshake_rejects.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  worker_.CloseSession(session_id);
  connection->socket.ShutdownBoth();
}

}  // namespace d2pr
