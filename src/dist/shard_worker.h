// ShardWorker: one partition shard's side of the distributed block
// solve — the service a `d2pr_server --shard-role` process hosts and a
// DistributedCoordinator drives through the v2 frames of
// net/shard_wire.h.
//
// A worker owns one PartitionShard (in-CSR only) plus its matrix-free
// transition slice (BuildTransitionSlicesLocal — no whole-graph
// TransitionMatrix is ever materialized on the shard). It comes into
// being two ways: Create() derives the shard from a whole CsrGraph
// in-process (tests, single-machine fleets), and CreateFromCutFile()
// loads one pre-cut shard file (graph/shard_cut.h) — the deployment
// path, where no whole-graph structure of ANY kind exists in the
// process (tests/dist_cut_test.cc pins this via GraphBuilder::
// BuildCount and TransitionMatrix::BuildCount). A cut-loaded worker
// defers its transition-slice build until the first kSolveBegin, whose
// trailing section carries the O(|V|) global metric vector the ack
// requested (needs_metric_values); the slice it builds is bitwise the
// one the whole-graph path builds. Per solve it
// retains its owned slice of the iterate across sweeps, so a sweep
// request carries only the O(boundary) remote values, the globally
// folded dangling mass, and — after iterations the coordinator
// L1-normalized globally — the exact 1/norm scalar to replay on the
// retained slice. The sweep arithmetic is lifted line-for-line from
// core/block_solver.cc: same fold order (ascending global source within
// each owned row, owned rows in ascending order), same policy terms,
// same teleport blend — which is what makes the distributed power solve
// bitwise identical to SolvePagerankPartitioned and block Gauss-Seidel
// identical to its in-process form (tests/dist_parity_test.cc).
//
// Handshake rejections are deliberately distinct so a mis-wired cluster
// diagnoses itself from status codes alone:
//
//   wrong shard id for this worker          -> NotFound
//   wrong shard count                       -> OutOfRange
//   wrong partition scheme / slice build    -> FailedPrecondition
//   graph fingerprint mismatch              -> FailedPrecondition
//   transition key mismatch (p/beta/metric) -> InvalidArgument
//   shard already claimed by a live session -> AlreadyExists
//
// Every reply the worker produces is safe to resend: a sweep request
// repeating the last executed sweep returns the cached reply without
// re-executing, so coordinator retries after a timeout (and duplicated
// frames from a flaky transport) cannot double-advance the iterate.
//
// Thread model: Handle() is serialized by an internal mutex. Multiple
// connections may talk to one worker concurrently (that is how the
// duplicate-claim rejection is exercised), but only the claiming session
// can start solves and sweep.

#ifndef D2PR_DIST_SHARD_WORKER_H_
#define D2PR_DIST_SHARD_WORKER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "core/transition.h"
#include "dist/channel.h"
#include "graph/csr_graph.h"
#include "graph/partition.h"
#include "graph/shard_cut.h"

namespace d2pr {

/// \brief What a shard worker hosts.
struct ShardWorkerOptions {
  size_t shard_id = 0;
  size_t num_shards = 1;
  PartitionScheme scheme = PartitionScheme::kRange;
  /// Transition model; metric may be kAuto (resolved against the graph,
  /// exactly as the engine normalizes its cache key, so coordinator and
  /// worker agree on the resolved key bitwise).
  TransitionConfig config;
};

/// \brief One shard's solve service.
class ShardWorker {
 public:
  /// Builds the worker's shard of `graph` (in-CSR only) and its
  /// matrix-free transition slice. Errors surface from the partition
  /// build, the slice build, or shard_id >= num_shards.
  static Result<std::unique_ptr<ShardWorker>> Create(
      const CsrGraph& graph, const ShardWorkerOptions& options);

  /// Loads one pre-cut shard file (`d2pr_partition_cut` output) instead
  /// of deriving the shard from a whole graph: shard id, shard count,
  /// scheme, fingerprint, and node/arc totals all come from the cut's
  /// validated metadata; only the transition config is the caller's.
  /// The transition slice is NOT built here — it needs the global
  /// metric vector, which the coordinator ships in the first
  /// kSolveBegin after the handshake ack sets needs_metric_values.
  /// Errors surface from the cut load/validation or an invalid config.
  static Result<std::unique_ptr<ShardWorker>> CreateFromCutFile(
      const std::string& path, const TransitionConfig& config);

  /// Handles one frame from logical connection `session_id` and returns
  /// the reply frame — application errors (handshake rejections, order
  /// violations, undecodable payloads) come back as kStatus frames, so
  /// an OK Result does NOT mean the request succeeded. A non-OK Result
  /// means the frame is not answerable at all (a type this service never
  /// accepts) and the hosting connection must close.
  Result<ShardFrame> Handle(const ShardFrame& request, uint64_t session_id);

  /// Releases `session_id`'s claim (and its solve state) — the hosting
  /// server calls this when the connection dies, so a crashed
  /// coordinator does not wedge the shard forever.
  void CloseSession(uint64_t session_id);

  uint64_t graph_fingerprint() const { return graph_fingerprint_; }
  size_t shard_id() const { return options_.shard_id; }
  const PartitionShard& shard() const { return live_shard(); }

  /// Sweeps executed (cache hits from retried sweeps excluded).
  int64_t sweeps_executed() const;

  /// Bytes of graph-shaped structure resident in this worker right now:
  /// the shard's CSR arrays, boundary/slot indexes, and — until the
  /// first solve builds the slice — the cut's ghost rows and weights.
  /// The per-worker evidence behind the ~1/N resident-memory claim
  /// (tests/dist_cut_test.cc, results/dist_bench.md). Excludes the
  /// transition slice and iterate (per-key solve state, not graph).
  int64_t resident_graph_bytes() const;

  /// Bytes of graph-shaped INPUT this worker consumed at creation:
  /// the whole graph's CSR bytes for Create(), the cut file's payload
  /// for CreateFromCutFile() — the build-time contrast the pre-cut
  /// pipeline exists to win.
  int64_t build_input_bytes() const { return build_input_bytes_; }

 private:
  /// The worker's resolved transition key fields (compared bitwise
  /// against the handshake).
  struct ResolvedKey {
    double p = 0.0;
    double beta = 0.0;
    DegreeMetric metric = DegreeMetric::kOutDegree;
  };

  ShardWorker(ShardWorkerOptions options, uint64_t fingerprint,
              ResolvedKey key);

  /// The shard structure to read from: the cut's copy before the first
  /// slice build (CreateFromCutFile keeps the loaded cut intact so
  /// BuildShardSliceFromCut sees ghost rows and weights together), the
  /// worker's own afterwards.
  const PartitionShard& live_shard() const {
    return cut_ ? cut_->shard : shard_;
  }

  /// Fills owned_dangling_, boundary_sources_, and src_slot_ from a
  /// shard's in-CSR (shared by both factories).
  void InitDerivedIndexes(const PartitionShard& shard);

  ShardFrame StatusReply(uint64_t request_id, const Status& status) const;

  ShardFrame HandleHandshake(const ShardFrame& request, uint64_t session_id);
  ShardFrame HandleSolveBegin(const ShardFrame& request, uint64_t session_id);
  ShardFrame HandleSweep(const ShardFrame& request, uint64_t session_id);
  ShardFrame HandleSolveEnd(const ShardFrame& request, uint64_t session_id);

  /// Executes one sweep over the retained slice (see the .cc for the
  /// line-for-line correspondence with core/block_solver.cc).
  void ExecuteSweep(double dangling_mass, bool has_rescale, double rescale,
                    const std::vector<double>& boundary);

  ShardWorkerOptions options_;
  uint64_t graph_fingerprint_ = 0;
  ResolvedKey key_;
  uint64_t num_nodes_ = 0;
  uint64_t num_arcs_ = 0;

  PartitionShard shard_;
  /// Held only between CreateFromCutFile and the first solve begin;
  /// its PartitionShard moves into shard_ once the slice is built and
  /// the ghost rows / weights are dropped.
  std::unique_ptr<ShardCut> cut_;
  /// True once probs_ holds this shard's slice (immediately for
  /// Create(); after the first metric-carrying solve begin for
  /// CreateFromCutFile()).
  bool slice_ready_ = false;
  int64_t build_input_bytes_ = 0;
  /// This shard's contiguous in-CSR-aligned probability slice.
  std::vector<double> probs_;
  /// dangling flag per owned local index (ascending owned order).
  std::vector<uint8_t> owned_dangling_;
  /// Distinct boundary sources, ascending global ids (the handshake ack
  /// publishes this; sweep-request boundary vectors use this order).
  std::vector<NodeId> boundary_sources_;
  /// Scratch slot of each in-CSR position: local owned index, or
  /// num_owned + boundary index. Precomputed so the sweep's inner loop
  /// never searches.
  std::vector<size_t> src_slot_;

  mutable std::mutex mu_;
  /// Session currently claiming the shard; 0 = unclaimed.
  uint64_t claimed_by_ = 0;

  // --- per-solve state (valid while solve_active_) ---
  bool solve_active_ = false;
  uint64_t solve_id_ = 0;
  uint32_t method_ = 0;
  DanglingPolicy dangling_policy_ = DanglingPolicy::kTeleport;
  double alpha_ = 0.85;
  /// Owned slice of the teleport vector.
  std::vector<double> teleport_;
  /// Iterate scratch: [owned values | boundary values], indexed by
  /// src_slot_. The owned prefix is the retained slice.
  std::vector<double> vals_;
  /// Power's double buffer for the new owned slice (GS sweeps in place).
  std::vector<double> next_;
  /// Last executed sweep (0 before the first) and its cached reply
  /// payload, re-sent verbatim when the coordinator retries.
  uint32_t last_sweep_ = 0;
  std::vector<uint8_t> cached_reply_;

  int64_t sweeps_executed_ = 0;
};

}  // namespace d2pr

#endif  // D2PR_DIST_SHARD_WORKER_H_
