// Deterministic pseudo-random number generation.
//
// All data generation in the library flows through Rng so that a single
// 64-bit seed reproduces every synthetic dataset bit-for-bit across runs and
// platforms. The core generator is xoshiro256** (Blackman & Vigna), seeded
// via SplitMix64; both are tiny, fast, and have well-understood quality.

#ifndef D2PR_COMMON_RNG_H_
#define D2PR_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace d2pr {

/// \brief SplitMix64 step: mixes a 64-bit state into a well-distributed
/// output and advances the state. Used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; create one Rng per thread or per generation task.
/// Satisfies the UniformRandomBitGenerator concept so it can also drive
/// <random> distributions if ever needed, though the library prefers the
/// explicit members below for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Creates a generator from a 64-bit seed. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  /// Re-initializes the state from `seed`.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Returns the next 64 random bits.
  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, bound) via Lemire's unbiased method.
  uint64_t Below(uint64_t bound) {
    D2PR_CHECK_GT(bound, 0u);
    // Rejection sampling on the multiply-shift range partition.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next();
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<uint64_t>(m) >= threshold) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    D2PR_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `prob`.
  bool Bernoulli(double prob) { return Uniform() < prob; }

  /// Standard normal deviate (Marsaglia polar method).
  double Normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double scale = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * scale;
    have_cached_normal_ = true;
    return u * scale;
  }

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Lognormal deviate: exp(Normal(mu, sigma)).
  double Lognormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Exponential deviate with the given rate (lambda).
  double Exponential(double rate) {
    D2PR_CHECK_GT(rate, 0.0);
    double u;
    do {
      u = Uniform();
    } while (u == 0.0);
    return -std::log(u) / rate;
  }

  /// Gamma deviate (Marsaglia & Tsang for shape >= 1; boost for shape < 1).
  double Gamma(double shape, double scale);

  /// Beta deviate via two Gammas.
  double Beta(double alpha, double beta) {
    double x = Gamma(alpha, 1.0);
    double y = Gamma(beta, 1.0);
    return x / (x + y);
  }

  /// Poisson deviate (Knuth for small mean, PTRS-lite normal approx cutover).
  int64_t Poisson(double mean);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Derives an independent child generator; child streams with distinct
  /// tags are statistically independent of each other and of the parent.
  Rng Fork(uint64_t tag) {
    uint64_t mix = state_[0] ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(SplitMix64(&mix));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace d2pr

#endif  // D2PR_COMMON_RNG_H_
