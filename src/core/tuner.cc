#include "core/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "stats/correlation.h"

namespace d2pr {

namespace {

constexpr double kInvPhi = 0.6180339887498949;  // 1/golden ratio

}  // namespace

Result<TuneResult> TuneDecouplingWeight(const CsrGraph& graph,
                                        std::span<const double> significance,
                                        const TuneOptions& options) {
  if (significance.size() != static_cast<size_t>(graph.num_nodes())) {
    return Status::InvalidArgument(
        StrCat("significance size ", significance.size(), " != num nodes ",
               graph.num_nodes()));
  }
  if (!(options.p_min < options.p_max)) {
    return Status::InvalidArgument("p_min must be < p_max");
  }
  if (!(options.coarse_step > 0.0)) {
    return Status::InvalidArgument("coarse_step must be positive");
  }

  TuneResult tune;
  auto evaluate = [&](double p) -> Result<double> {
    D2prOptions opts = options.base;
    opts.p = p;
    D2PR_ASSIGN_OR_RETURN(PagerankResult pr, ComputeD2pr(graph, opts));
    const double corr = SpearmanCorrelation(pr.scores, significance);
    tune.evaluated.emplace_back(p, corr);
    return corr;
  };

  // Coarse grid pass.
  double best_p = options.p_min;
  double best_corr = -2.0;
  for (double p = options.p_min; p <= options.p_max + 1e-12;
       p += options.coarse_step) {
    D2PR_ASSIGN_OR_RETURN(double corr, evaluate(p));
    if (corr > best_corr) {
      best_corr = corr;
      best_p = p;
    }
  }

  // Golden-section refinement inside the bracket around the best grid
  // point (one grid cell each side, clamped to the search range).
  double lo = std::max(options.p_min, best_p - options.coarse_step);
  double hi = std::min(options.p_max, best_p + options.coarse_step);
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  D2PR_ASSIGN_OR_RETURN(double f1, evaluate(x1));
  D2PR_ASSIGN_OR_RETURN(double f2, evaluate(x2));
  for (int iter = 0; iter < options.max_refine_iterations &&
                     (hi - lo) > options.refine_tolerance;
       ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      D2PR_ASSIGN_OR_RETURN(f2, evaluate(x2));
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      D2PR_ASSIGN_OR_RETURN(f1, evaluate(x1));
    }
  }

  // Report the best point seen anywhere (grid or refinement).
  for (const auto& [p, corr] : tune.evaluated) {
    if (corr > best_corr || (corr == best_corr && p == best_p)) {
      best_corr = corr;
      best_p = p;
    }
  }
  tune.best_p = best_p;
  tune.best_correlation = best_corr;
  return tune;
}

}  // namespace d2pr
