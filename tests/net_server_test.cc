// RpcServer end-to-end over loopback: responses must be bit-identical to
// direct backend calls (single engine, replicated shards, partitioned
// subgraphs), deadlines must be enforced deterministically through the
// injected clock (an expired request never reaches the engine), admission
// control must shed with kUnavailable while admitted work completes,
// identical in-flight requests must coalesce into one solve, and broken
// byte streams must close their connection without taking the server
// down.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/check.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/wire.h"
#include "serve/engine_router.h"
#include "serve/serving_runtime.h"

namespace d2pr {
namespace {

Result<CsrGraph> TestGraph(uint64_t seed, NodeId nodes = 250,
                           int64_t edges = 750) {
  Rng rng(seed);
  return ErdosRenyi(nodes, edges, &rng);
}

/// Polls `condition` for up to five seconds; the wall-clock bound only
/// fires on deadlock, not as a tolerance for flaky behavior.
bool WaitFor(const std::function<bool()>& condition) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return condition();
}

void ExpectResponsesIdentical(const RankResponse& over_wire,
                              const RankResponse& direct, size_t index) {
  SCOPED_TRACE("request index " + std::to_string(index));
  EXPECT_EQ(over_wire.scores, direct.scores);  // exact, not approximate
  EXPECT_EQ(over_wire.method, direct.method);
  EXPECT_EQ(over_wire.iterations, direct.iterations);
  EXPECT_EQ(over_wire.pushes, direct.pushes);
  EXPECT_EQ(over_wire.converged, direct.converged);
  EXPECT_EQ(over_wire.residual, direct.residual);
  EXPECT_EQ(over_wire.transition_cache_hit, direct.transition_cache_hit);
  EXPECT_EQ(over_wire.transition_store_hit, direct.transition_store_hit);
  EXPECT_EQ(over_wire.warm_start_hit, direct.warm_start_hit);
  EXPECT_EQ(over_wire.served_partitioned, direct.served_partitioned);
}

/// A single-engine server plus everything keeping it alive.
struct RuntimeServer {
  explicit RuntimeServer(uint64_t graph_seed, ServerOptions options = {},
                         size_t num_threads = 2) {
    auto graph = TestGraph(graph_seed);
    D2PR_CHECK(graph.ok()) << graph.status().ToString();
    engine = std::make_shared<D2prEngine>(std::move(graph).value());
    ServingOptions serving_options;
    serving_options.num_threads = num_threads;
    runtime = std::make_unique<ServingRuntime>(engine, serving_options);
    backend = MakeBackend(*runtime);
    server = std::make_unique<RpcServer>(*backend, options);
    const Status started = server->Start();
    D2PR_CHECK(started.ok()) << started.ToString();
  }

  RpcClient NewClient() {
    auto client = RpcClient::Connect("127.0.0.1", server->port());
    D2PR_CHECK(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::shared_ptr<D2prEngine> engine;
  std::unique_ptr<ServingRuntime> runtime;
  std::unique_ptr<RankBackend> backend;
  std::unique_ptr<RpcServer> server;
};

/// The parity workload: all three solvers, personalization, repeats that
/// hit the score cache, and a warm-start chain.
std::vector<RankRequest> ParityWorkload() {
  std::vector<RankRequest> requests;
  RankRequest power;
  power.p = 0.3;
  power.tolerance = 1e-9;
  requests.push_back(power);

  RankRequest seeded = power;
  seeded.seeds = {5, 17, 101};
  requests.push_back(seeded);

  RankRequest gauss;
  gauss.p = 0.8;
  gauss.method = SolverMethod::kGaussSeidel;
  gauss.alpha = 0.9;
  gauss.tolerance = 1e-9;
  requests.push_back(gauss);

  RankRequest push;
  push.p = -0.5;
  push.method = SolverMethod::kForwardPush;
  push.push_epsilon = 1e-6;
  push.seeds = {42};
  requests.push_back(push);

  requests.push_back(power);   // repeat: score-cache hit path
  requests.push_back(seeded);  // repeat with seeds

  for (int i = 0; i < 3; ++i) {
    RankRequest sweep;
    sweep.p = -1.0 + 0.5 * i;
    sweep.tolerance = 1e-9;
    sweep.warm_start_tag = "sweep";
    requests.push_back(sweep);
  }
  return requests;
}

TEST(NetServerTest, LoopbackResponsesIdenticalToDirectRuntime) {
  RuntimeServer served(/*graph_seed=*/7);
  // The reference runs on its own engine over an identically-generated
  // graph, so both sides start cold and see the same request sequence.
  auto reference_graph = TestGraph(7);
  ASSERT_TRUE(reference_graph.ok());
  auto reference_engine =
      std::make_shared<D2prEngine>(std::move(reference_graph).value());
  ServingOptions serving_options;
  serving_options.num_threads = 2;
  ServingRuntime reference(reference_engine, serving_options);

  RpcClient client = served.NewClient();
  const std::vector<RankRequest> workload = ParityWorkload();
  for (size_t i = 0; i < workload.size(); ++i) {
    auto over_wire = client.Rank(workload[i]);
    auto direct = reference.Rank(workload[i]);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ExpectResponsesIdentical(over_wire.value(), direct.value(), i);
  }
}

TEST(NetServerTest, LoopbackResponsesIdenticalToDirectShardedRouter) {
  RouterOptions router_options;
  router_options.num_shards = 3;
  router_options.worker_threads = 2;

  auto graph = TestGraph(11);
  ASSERT_TRUE(graph.ok());
  EngineRouter router(std::move(graph).value(), router_options);
  auto backend = MakeBackend(router);
  RpcServer server(*backend);
  ASSERT_TRUE(server.Start().ok());

  auto reference_graph = TestGraph(11);
  ASSERT_TRUE(reference_graph.ok());
  EngineRouter reference(std::move(reference_graph).value(), router_options);

  auto client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  const std::vector<RankRequest> workload = ParityWorkload();
  for (size_t i = 0; i < workload.size(); ++i) {
    auto over_wire = client->Rank(workload[i]);
    auto direct = reference.Rank(workload[i]);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ExpectResponsesIdentical(over_wire.value(), direct.value(), i);
  }
}

TEST(NetServerTest, LoopbackResponsesIdenticalToDirectPartitionedSubgraph) {
  RouterOptions router_options;
  router_options.num_shards = 2;
  router_options.policy = RoutingPolicy::kPartitionedSubgraph;
  router_options.worker_threads = 2;

  auto graph = TestGraph(13);
  ASSERT_TRUE(graph.ok());
  EngineRouter router(std::move(graph).value(), router_options);
  auto backend = MakeBackend(router);
  RpcServer server(*backend);
  ASSERT_TRUE(server.Start().ok());

  auto reference_graph = TestGraph(13);
  ASSERT_TRUE(reference_graph.ok());
  EngineRouter reference(std::move(reference_graph).value(), router_options);

  auto client = RpcClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // Partitioned-subgraph mode serves power and Gauss-Seidel only (no
  // push, no warm starts); both must agree with a direct block solve.
  std::vector<RankRequest> workload;
  RankRequest power;
  power.p = 0.4;
  power.tolerance = 1e-10;
  workload.push_back(power);
  RankRequest seeded = power;
  seeded.seeds = {3, 99};
  workload.push_back(seeded);
  RankRequest gauss;
  gauss.p = 0.9;
  gauss.method = SolverMethod::kGaussSeidel;
  gauss.tolerance = 1e-10;
  workload.push_back(gauss);
  for (size_t i = 0; i < workload.size(); ++i) {
    auto over_wire = client->Rank(workload[i]);
    auto direct = reference.Rank(workload[i]);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_TRUE(over_wire->served_partitioned);
    ExpectResponsesIdentical(over_wire.value(), direct.value(), i);
  }
}

TEST(NetServerTest, InfoReportsBackendShape) {
  RuntimeServer served(/*graph_seed=*/3, ServerOptions{},
                       /*num_threads=*/4);
  RpcClient client = served.NewClient();
  auto info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->num_nodes,
            static_cast<uint64_t>(served.engine->graph().num_nodes()));
  EXPECT_EQ(info->num_arcs,
            static_cast<uint64_t>(served.engine->graph().num_arcs()));
  EXPECT_EQ(info->num_shards, 1u);
  EXPECT_EQ(info->num_threads, 4u);
}

TEST(NetServerTest, SolverErrorsCrossTheWireVerbatim) {
  RuntimeServer served(/*graph_seed=*/5);
  RpcClient client = served.NewClient();

  RankRequest bad;
  bad.alpha = 1.5;  // out of [0, 1)
  auto over_wire = client.Rank(bad);
  auto direct = served.runtime->Rank(bad);
  ASSERT_FALSE(over_wire.ok());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(over_wire.status().code(), direct.status().code());
  EXPECT_EQ(over_wire.status().message(), direct.status().message());

  // An application error is not a protocol error: the same connection
  // serves the next request.
  RankRequest good;
  good.p = 0.5;
  EXPECT_TRUE(client.Rank(good).ok());
  EXPECT_EQ(served.server->stats().protocol_errors.load(), 0);
}

TEST(NetServerTest, ExpiredDeadlineNeverReachesTheEngine) {
  // Stepping clock: read i returns i * 60. Stamp reads 60, so a 50 ms
  // deadline is absolute 110; the pre-solve gate reads 120 and must
  // reject without the engine ever seeing the request.
  auto ticks = std::make_shared<std::atomic<int64_t>>(0);
  ServerOptions options;
  options.clock_ms = [ticks] { return ticks->fetch_add(60) + 60; };
  RuntimeServer served(/*graph_seed=*/5, options);
  RpcClient client = served.NewClient();

  RankRequest request;
  request.p = 0.5;
  auto response = client.Rank(request, /*deadline_ms=*/50);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(served.engine->stats().requests.load(), 0);
  EXPECT_EQ(served.server->stats().deadline_expired_presolve.load(), 1);
  EXPECT_EQ(served.server->stats().deadline_expired_delivery.load(), 0);
}

TEST(NetServerTest, DeadlineExpiringAfterSolveIsCaughtAtDelivery) {
  // Read i returns i * 30: stamp 30 (deadline 80), gate 60 (admitted, the
  // solve runs), delivery 90 (too late — the response is replaced).
  auto ticks = std::make_shared<std::atomic<int64_t>>(0);
  ServerOptions options;
  options.clock_ms = [ticks] { return ticks->fetch_add(30) + 30; };
  RuntimeServer served(/*graph_seed=*/5, options);
  RpcClient client = served.NewClient();

  RankRequest request;
  request.p = 0.5;
  auto response = client.Rank(request, /*deadline_ms=*/50);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(served.engine->stats().requests.load(), 1);
  EXPECT_EQ(served.server->stats().deadline_expired_presolve.load(), 0);
  EXPECT_EQ(served.server->stats().deadline_expired_delivery.load(), 1);
}

TEST(NetServerTest, UndeadlinedRequestsNeverReadTheClock) {
  auto reads = std::make_shared<std::atomic<int64_t>>(0);
  ServerOptions options;
  options.clock_ms = [reads] { return reads->fetch_add(1); };
  RuntimeServer served(/*graph_seed=*/5, options);
  RpcClient client = served.NewClient();

  RankRequest request;
  request.p = 0.5;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Rank(request).ok());
  }
  EXPECT_EQ(reads->load(), 0);

  // And a deadlined request costs exactly the three documented reads:
  // stamp, pre-solve gate, delivery.
  ASSERT_TRUE(client.Rank(request, /*deadline_ms=*/1'000'000).ok());
  EXPECT_EQ(reads->load(), 3);
}

TEST(NetServerTest, SaturationShedsUnavailableWhileAdmittedWorkCompletes) {
  ServerOptions options;
  options.max_queue_depth = 1;
  options.coalesce = false;
  RuntimeServer served(/*graph_seed=*/5, options, /*num_threads=*/1);

  // Park the only worker so backend queue depth is fully test-controlled.
  std::latch release(1);
  served.runtime->pool().Submit([&release] { release.wait(); });
  ASSERT_TRUE(WaitFor(
      [&] { return served.runtime->pool().busy_workers() == 1; }));

  // First request is admitted (queue depth 0 < 1) and queues behind the
  // parked worker.
  RpcClient admitted_client = served.NewClient();
  std::thread admitted_thread([&admitted_client] {
    RankRequest request;
    request.p = 0.25;
    auto response = admitted_client.Rank(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  });
  ASSERT_TRUE(
      WaitFor([&] { return served.runtime->pool().queue_depth() == 1; }));

  // Second request arrives at the bound and must be shed — as a
  // kUnavailable frame, distinguishable at the framing layer, carrying a
  // kUnavailable status.
  RpcClient shed_client = served.NewClient();
  RankRequest other;
  other.p = 0.75;
  WireRankRequest wire;
  wire.request = other;
  const std::vector<uint8_t> frame = EncodeFrame(
      FrameType::kRankRequest, /*request_id=*/77, EncodeRankRequest(wire));
  ASSERT_TRUE(shed_client.SendRaw(frame.data(), frame.size()).ok());
  auto reply = shed_client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, FrameType::kUnavailable);
  EXPECT_EQ(reply->request_id, 77u);
  Status shed_status;
  ASSERT_TRUE(DecodeStatusPayload(reply->payload, &shed_status).ok());
  EXPECT_EQ(shed_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(served.server->stats().shed_unavailable.load(), 1);

  // The shed never touched the pool; the admitted request completes once
  // the worker frees up.
  release.count_down();
  admitted_thread.join();
  EXPECT_EQ(served.engine->stats().requests.load(), 1);
}

TEST(NetServerTest, IdenticalInflightRequestsCoalesceIntoOneSolve) {
  RuntimeServer served(/*graph_seed=*/5, ServerOptions{}, /*num_threads=*/1);

  std::latch release(1);
  served.runtime->pool().Submit([&release] { release.wait(); });
  ASSERT_TRUE(WaitFor(
      [&] { return served.runtime->pool().busy_workers() == 1; }));

  RankRequest request;
  request.p = 0.6;
  request.seeds = {9};

  RpcClient leader_client = served.NewClient();
  Result<RankResponse> leader_response = Status::Internal("unset");
  std::thread leader_thread([&] {
    leader_response = leader_client.Rank(request);
  });
  // The leader's solve is queued (worker parked) before the joiner sends
  // the identical request, so the join is deterministic.
  ASSERT_TRUE(
      WaitFor([&] { return served.runtime->pool().queue_depth() == 1; }));

  RpcClient joiner_client = served.NewClient();
  Result<RankResponse> joiner_response = Status::Internal("unset");
  std::thread joiner_thread([&] {
    joiner_response = joiner_client.Rank(request);
  });
  ASSERT_TRUE(WaitFor(
      [&] { return served.server->stats().coalesce_joins.load() == 1; }));

  release.count_down();
  leader_thread.join();
  joiner_thread.join();
  ASSERT_TRUE(leader_response.ok()) << leader_response.status().ToString();
  ASSERT_TRUE(joiner_response.ok()) << joiner_response.status().ToString();
  ExpectResponsesIdentical(joiner_response.value(), leader_response.value(),
                           0);
  // One solve served both waiters.
  EXPECT_EQ(served.engine->stats().requests.load(), 1);
  EXPECT_EQ(served.server->stats().requests_received.load(), 2);
}

TEST(NetServerTest, GarbageBytesCloseTheConnectionNotTheServer) {
  RuntimeServer served(/*graph_seed=*/5);
  {
    RpcClient garbage_client = served.NewClient();
    std::vector<uint8_t> garbage(kFrameHeaderBytes, 0xff);
    ASSERT_TRUE(
        garbage_client.SendRaw(garbage.data(), garbage.size()).ok());
    // The server drops the connection; the read surfaces the close.
    EXPECT_FALSE(garbage_client.ReadFrame().ok());
  }
  ASSERT_TRUE(WaitFor(
      [&] { return served.server->stats().protocol_errors.load() >= 1; }));

  // The server is unharmed: a fresh connection serves normally.
  RpcClient client = served.NewClient();
  RankRequest request;
  request.p = 0.5;
  EXPECT_TRUE(client.Rank(request).ok());
}

TEST(NetServerTest, TruncatedHeaderAtDisconnectCountsAsProtocolError) {
  RuntimeServer served(/*graph_seed=*/5);
  {
    RpcClient client = served.NewClient();
    const uint8_t partial[5] = {1, 2, 3, 4, 5};
    ASSERT_TRUE(client.SendRaw(partial, sizeof(partial)).ok());
    // Client destructor closes the socket mid-header.
  }
  EXPECT_TRUE(WaitFor(
      [&] { return served.server->stats().protocol_errors.load() == 1; }));
}

TEST(NetServerTest, UndecodablePayloadGetsStatusReplyAndConnectionLives) {
  RuntimeServer served(/*graph_seed=*/5);
  RpcClient client = served.NewClient();

  const std::vector<uint8_t> junk = {0xde, 0xad, 0xbe};
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kRankRequest, /*request_id=*/31, junk);
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, FrameType::kStatus);
  EXPECT_EQ(reply->request_id, 31u);
  Status decoded;
  ASSERT_TRUE(DecodeStatusPayload(reply->payload, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(served.server->stats().decode_errors.load(), 1);
  EXPECT_EQ(served.server->stats().protocol_errors.load(), 0);

  // Same connection, next request: still served.
  RankRequest request;
  request.p = 0.5;
  EXPECT_TRUE(client.Rank(request).ok());
}

TEST(NetServerTest, ServerBoundFrameTypeFromClientIsAProtocolError) {
  RuntimeServer served(/*graph_seed=*/5);
  RpcClient client = served.NewClient();
  const std::vector<uint8_t> frame = EncodeFrame(
      FrameType::kRankResponse, /*request_id=*/1,
      EncodeRankResponse(RankResponse{}));
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  EXPECT_FALSE(client.ReadFrame().ok());
  EXPECT_TRUE(WaitFor(
      [&] { return served.server->stats().protocol_errors.load() == 1; }));
}

TEST(NetServerTest, LoadGeneratorRunsCleanAgainstLoopbackServer) {
  RuntimeServer served(/*graph_seed=*/17);
  LoadGenOptions options;
  options.port = served.server->port();
  options.connections = 2;
  options.requests_per_connection = 20;
  options.zipf_s = 1.2;
  options.global_fraction = 0.25;
  options.seed = 99;
  options.base.tolerance = 1e-6;  // keep the suite fast
  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->attempted, 40u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_EQ(report->ok + report->unavailable + report->deadline_exceeded,
            report->attempted);
  EXPECT_GE(report->p99_us, report->p50_us);
  EXPECT_EQ(served.server->stats().protocol_errors.load(), 0);
  // Served and offered throughput agree on a clean run (every attempt
  // was served), and both reconstruct their counts from elapsed time.
  EXPECT_EQ(report->ok, report->attempted);
  EXPECT_NEAR(report->requests_per_s * report->elapsed_s,
              static_cast<double>(report->ok), 1e-6);
  EXPECT_NEAR(report->attempted_per_s * report->elapsed_s,
              static_cast<double>(report->attempted), 1e-6);
}

TEST(NetServerTest, LoadGenReportsOkOnlyThroughputAndLatencyWhenSaturated) {
  // max_queue_depth = 0 sheds every rank request at the door
  // (queue_depth() >= 0 always holds), a deterministic stand-in for a
  // fully saturated backend: each round-trip is a microsecond-scale
  // admission reject, nothing is ever served. The old report divided
  // *attempted* by elapsed and sampled every round-trip, so this exact
  // scenario reported thousands of requests per second at microsecond
  // percentiles while serving nothing; ok-only accounting reports zero.
  ServerOptions server_options;
  server_options.max_queue_depth = 0;
  server_options.coalesce = false;
  RuntimeServer served(/*graph_seed=*/17, server_options);

  LoadGenOptions options;
  options.port = served.server->port();
  options.connections = 2;
  options.requests_per_connection = 15;
  options.zipf_s = 1.2;
  options.seed = 7;
  auto report = RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The offered side stays fully visible...
  EXPECT_EQ(report->attempted, 30u);
  EXPECT_EQ(report->unavailable, 30u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_GT(report->attempted_per_s, 0.0);
  // ...while the served side truthfully reports nothing was served.
  EXPECT_EQ(report->ok, 0u);
  EXPECT_EQ(report->requests_per_s, 0.0);
  EXPECT_EQ(report->p50_us, 0.0);
  EXPECT_EQ(report->p99_us, 0.0);
  EXPECT_EQ(served.server->stats().shed_unavailable.load(), 30);
}

TEST(NetServerTest, StopDrainsAdmittedRequestsBeforeExiting) {
  RuntimeServer served(/*graph_seed=*/5, ServerOptions{}, /*num_threads=*/1);

  std::latch release(1);
  served.runtime->pool().Submit([&release] { release.wait(); });
  ASSERT_TRUE(WaitFor(
      [&] { return served.runtime->pool().busy_workers() == 1; }));

  RpcClient client = served.NewClient();
  Result<RankResponse> response = Status::Internal("unset");
  std::thread requester([&] {
    RankRequest request;
    request.p = 0.5;
    response = client.Rank(request);
  });
  ASSERT_TRUE(
      WaitFor([&] { return served.runtime->pool().queue_depth() == 1; }));

  // Stop() must wait for the admitted solve, not abandon it: release the
  // worker from another thread while Stop() is draining.
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.count_down();
  });
  served.server->Stop();
  releaser.join();
  requester.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(served.engine->stats().requests.load(), 1);
}

}  // namespace
}  // namespace d2pr
