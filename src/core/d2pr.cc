#include "core/d2pr.h"

namespace d2pr {

// The one-shot entry points declared here are implemented in
// api/queries.cc as thin wrappers over a call-scoped D2prEngine, keeping
// the core -> api dependency one-directional at the TU level. Only the
// option converters live in core.

TransitionConfig ToTransitionConfig(const D2prOptions& options) {
  TransitionConfig config;
  config.p = options.p;
  config.beta = options.beta;
  config.metric = options.metric;
  return config;
}

PagerankOptions ToPagerankOptions(const D2prOptions& options) {
  PagerankOptions pr;
  pr.alpha = options.alpha;
  pr.tolerance = options.tolerance;
  pr.max_iterations = options.max_iterations;
  pr.dangling = options.dangling;
  return pr;
}

}  // namespace d2pr
