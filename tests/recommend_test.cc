#include "eval/recommend.h"

#include <cmath>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

// scores rank items as 3, 1, 0, 2 (best first).
const std::vector<double> kScores{0.5, 0.7, 0.1, 0.9};

TEST(PrecisionAtKTest, CountsHitsInPrefix) {
  const std::vector<uint8_t> relevant{0, 1, 0, 1};  // items 1 and 3
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, relevant, 1), 1.0);  // {3}
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, relevant, 2), 1.0);  // {3,1}
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, relevant, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, relevant, 4), 0.5);
}

TEST(PrecisionAtKTest, KLargerThanItemsClamps) {
  const std::vector<uint8_t> relevant{1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, relevant, 100), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kScores, relevant, 0), 0.0);
}

TEST(RecallAtKTest, FractionOfRelevantRetrieved) {
  const std::vector<uint8_t> relevant{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(RecallAtK(kScores, relevant, 1), 0.5);   // {3}
  EXPECT_DOUBLE_EQ(RecallAtK(kScores, relevant, 2), 1.0);   // {3,1}
  EXPECT_DOUBLE_EQ(RecallAtK(kScores, relevant, 4), 1.0);
}

TEST(RecallAtKTest, NoRelevantGivesZero) {
  const std::vector<uint8_t> relevant{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(kScores, relevant, 2), 0.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  // Gains aligned with scores: ranking is ideal.
  const std::vector<double> gains{2.0, 3.0, 1.0, 4.0};
  EXPECT_NEAR(NdcgAtK(kScores, gains, 4), 1.0, 1e-12);
}

TEST(NdcgTest, WorstRankingBelowOne) {
  const std::vector<double> gains{4.0, 1.0, 3.0, 0.0};  // anti-aligned
  const double ndcg = NdcgAtK(kScores, gains, 4);
  EXPECT_LT(ndcg, 0.9);
  EXPECT_GT(ndcg, 0.0);
}

TEST(NdcgTest, HandComputedValue) {
  // Ranking order: 3, 1, 0, 2. Gains: {0, 1, 0, 1}.
  // DCG@2 = 1/log2(2) + 1/log2(3) = 1 + 0.63093.
  // IDCG@2 = same (two relevant items ideally first) -> NDCG = 1.
  // DCG@3 unchanged; NDCG@3 = 1 as well (ideal has only 2 gains).
  const std::vector<double> gains{0.0, 1.0, 0.0, 1.0};
  EXPECT_NEAR(NdcgAtK(kScores, gains, 2), 1.0, 1e-12);
  // Now swap gains so the second-best gain sits at the bottom rank.
  const std::vector<double> gains2{0.0, 0.0, 1.0, 1.0};
  // Order 3,1,0,2: DCG@4 = 1/log2(2) + 1/log2(5) = 1 + 0.430677.
  // IDCG@4 = 1/log2(2) + 1/log2(3) = 1.63093.
  EXPECT_NEAR(NdcgAtK(kScores, gains2, 4),
              (1.0 + 1.0 / std::log2(5.0)) / (1.0 + 1.0 / std::log2(3.0)),
              1e-12);
}

TEST(NdcgTest, ZeroGainsGiveZero) {
  const std::vector<double> gains{0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(NdcgAtK(kScores, gains, 4), 0.0);
}

TEST(AveragePrecisionTest, PerfectAndWorst) {
  const std::vector<uint8_t> top_two{0, 1, 0, 1};  // ranks 1 and 2
  EXPECT_DOUBLE_EQ(AveragePrecision(kScores, top_two), 1.0);
  const std::vector<uint8_t> bottom_two{1, 0, 1, 0};  // ranks 3 and 4
  // AP = (1/3 + 2/4) / 2.
  EXPECT_DOUBLE_EQ(AveragePrecision(kScores, bottom_two),
                   (1.0 / 3.0 + 0.5) / 2.0);
}

TEST(AveragePrecisionTest, EmptyRelevantGivesZero) {
  const std::vector<uint8_t> relevant{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(AveragePrecision(kScores, relevant), 0.0);
}

TEST(TopFractionTest, MarksExpectedCount) {
  const std::vector<double> significance{5.0, 1.0, 4.0, 2.0, 3.0};
  const std::vector<uint8_t> relevant =
      TopFractionRelevance(significance, 0.4);
  EXPECT_EQ(relevant, (std::vector<uint8_t>{1, 0, 1, 0, 0}));
}

TEST(TopFractionTest, AtLeastOneMarked) {
  const std::vector<double> significance{1.0, 2.0};
  const std::vector<uint8_t> relevant =
      TopFractionRelevance(significance, 0.01);
  EXPECT_EQ(relevant[1], 1);
  EXPECT_EQ(relevant[0] + relevant[1], 1);
}

TEST(RecommendDeathTest, SizeMismatchesAbort) {
  const std::vector<uint8_t> relevant{1};
  EXPECT_DEATH((void)PrecisionAtK(kScores, relevant, 1), "CHECK failed");
  const std::vector<double> gains{1.0};
  EXPECT_DEATH((void)NdcgAtK(kScores, gains, 1), "CHECK failed");
}

}  // namespace
}  // namespace d2pr
