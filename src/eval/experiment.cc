#include "eval/experiment.h"

#include <cmath>

#include "stats/correlation.h"

namespace d2pr {

Result<std::vector<CorrelationPoint>> CorrelationPSweep(
    const CsrGraph& graph, std::span<const double> significance,
    const std::vector<double>& p_grid, const D2prOptions& base) {
  if (significance.size() != static_cast<size_t>(graph.num_nodes())) {
    return Status::InvalidArgument("significance size != num nodes");
  }
  std::vector<CorrelationPoint> series;
  series.reserve(p_grid.size());
  for (double p : p_grid) {
    D2prOptions options = base;
    options.p = p;
    D2PR_ASSIGN_OR_RETURN(PagerankResult result, ComputeD2pr(graph, options));
    CorrelationPoint point;
    point.p = p;
    point.correlation = SpearmanCorrelation(result.scores, significance);
    point.iterations = result.iterations;
    point.converged = result.converged;
    series.push_back(point);
  }
  return series;
}

Result<CorrelationSurface> CorrelationAlphaPSweep(
    const CsrGraph& graph, std::span<const double> significance,
    const std::vector<double>& alpha_values,
    const std::vector<double>& p_grid, const D2prOptions& base) {
  CorrelationSurface surface;
  surface.outer_values = alpha_values;
  for (double alpha : alpha_values) {
    D2prOptions options = base;
    options.alpha = alpha;
    D2PR_ASSIGN_OR_RETURN(
        std::vector<CorrelationPoint> series,
        CorrelationPSweep(graph, significance, p_grid, options));
    surface.series.push_back(std::move(series));
  }
  return surface;
}

Result<CorrelationSurface> CorrelationBetaPSweep(
    const CsrGraph& graph, std::span<const double> significance,
    const std::vector<double>& beta_values,
    const std::vector<double>& p_grid, const D2prOptions& base) {
  if (!graph.weighted()) {
    return Status::InvalidArgument(
        "beta sweeps require a weighted graph (beta blends connection "
        "strength with degree de-coupling)");
  }
  CorrelationSurface surface;
  surface.outer_values = beta_values;
  for (double beta : beta_values) {
    D2prOptions options = base;
    options.beta = beta;
    D2PR_ASSIGN_OR_RETURN(
        std::vector<CorrelationPoint> series,
        CorrelationPSweep(graph, significance, p_grid, options));
    surface.series.push_back(std::move(series));
  }
  return surface;
}

CorrelationPoint BestPoint(const std::vector<CorrelationPoint>& series) {
  D2PR_CHECK(!series.empty());
  CorrelationPoint best = series.front();
  for (const CorrelationPoint& point : series) {
    if (point.correlation > best.correlation ||
        (point.correlation == best.correlation &&
         std::abs(point.p) < std::abs(best.p))) {
      best = point;
    }
  }
  return best;
}

CorrelationPoint ConventionalPoint(
    const std::vector<CorrelationPoint>& series) {
  for (const CorrelationPoint& point : series) {
    if (point.p == 0.0) return point;
  }
  D2PR_CHECK(false) << "series does not include p = 0";
  return {};
}

D2prOptions BenchOptions() {
  D2prOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-9;
  options.max_iterations = 300;
  return options;
}

}  // namespace d2pr
