// LRU cache of TransitionMatrix instances, keyed by the transition model
// parameters (p, beta, resolved metric).
//
// Building a transition matrix is O(|E|) with a log-space row
// normalization — by far the dominant per-query setup cost once a graph is
// loaded. Sweeps, tuners, and serving traffic revisit the same handful of
// parameter points, so the engine keeps the most recent matrices alive and
// shares them across queries via shared_ptr (a response can outlive an
// eviction safely).

#ifndef D2PR_API_TRANSITION_CACHE_H_
#define D2PR_API_TRANSITION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/transition.h"

namespace d2pr {

/// \brief Identity of a transition model on a fixed graph.
///
/// `metric` must be resolved (never kAuto) so that equivalent requests
/// written differently hit the same entry; `beta` must be the effective
/// value (0 on unweighted graphs). D2prEngine performs both
/// normalizations before lookup.
struct TransitionKey {
  double p = 0.0;
  double beta = 0.0;
  DegreeMetric metric = DegreeMetric::kOutDegree;

  bool operator==(const TransitionKey&) const = default;
};

/// \brief Least-recently-used cache mapping TransitionKey to a shared,
/// immutable TransitionMatrix.
///
/// Capacity 0 disables caching (every Lookup misses, Insert is a no-op).
/// Lookup is a linear scan: capacities are tens of entries, where a scan
/// over a contiguous-ish list beats hashing doubles.
///
/// Thread-safe: every operation (including the recency splice inside
/// Lookup and the hit/miss counters) runs under an internal mutex, so one
/// cache can serve many engine workers. Single-flight deduplication of
/// concurrent builds for the same key is the engine's job — the cache only
/// stores finished matrices.
class TransitionCache {
 public:
  explicit TransitionCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached matrix and refreshes its recency, or nullptr on
  /// miss. Counts a hit or miss either way.
  std::shared_ptr<const TransitionMatrix> Lookup(const TransitionKey& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when over capacity.
  void Insert(const TransitionKey& key,
              std::shared_ptr<const TransitionMatrix> transition);

  /// Resident keys, most recently used first. A consistent snapshot —
  /// ServingRuntime uses it to replay the reference LRU trace for a batch.
  std::vector<TransitionKey> Keys() const;

  /// Resident entries (key + matrix), most recently used first, without
  /// perturbing recency or the hit/miss counters. The engine's lazy
  /// persistence policy spills from this snapshot.
  std::vector<std::pair<TransitionKey,
                        std::shared_ptr<const TransitionMatrix>>>
  Snapshot() const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  size_t capacity() const { return capacity_; }
  int64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  int64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  using Entry = std::pair<TransitionKey, std::shared_ptr<const TransitionMatrix>>;

  mutable std::mutex mu_;
  std::list<Entry> entries_;  // front = most recently used
  const size_t capacity_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace d2pr

#endif  // D2PR_API_TRANSITION_CACHE_H_
