// Extension experiment (beyond the paper's figures): top-k recommendation
// accuracy versus de-coupling weight.
//
// The paper claims degree de-coupling "improves recommendation accuracies"
// but reports only rank correlations. This harness measures precision@20
// and NDCG@20 of the D2PR ranking against top-decile ground truth on every
// data graph, at the conventional p = 0, the correlation-optimal p from
// the Figure 2-4 sweep, and the tuner's refined p*.

#include <cstdio>

#include "common/string_util.h"
#include "core/sweeps.h"
#include "core/tuner.h"
#include "eval/recommend.h"
#include "eval/table_writer.h"
#include "repro_common.h"

namespace d2pr {
namespace bench {
namespace {

constexpr size_t kTopK = 20;

int Run() {
  PrintHeader("Extension: top-k recommendation accuracy vs p",
              "not a paper figure; quantifies the paper's 'improves "
              "recommendation accuracies' claim at the top of the ranking");
  const RegistryOptions options = BenchRegistryOptions();

  TextTable table({"graph", "metric", "p=0", "grid-best p", "value@best",
                   "tuned p*", "value@p*"});
  int improved = 0, total = 0;
  for (PaperGraphId id : AllPaperGraphIds()) {
    DataGraph data = LoadGraph(id, options);
    const std::vector<uint8_t> relevant =
        TopFractionRelevance(data.significance, 0.1);
    std::vector<double> gains(data.significance.size());
    for (size_t i = 0; i < gains.size(); ++i) {
      gains[i] = relevant[i] ? 1.0 : 0.0;
    }

    auto series = CorrelationPSweep(data.unweighted, data.significance,
                                    PaperPGrid(), BenchOptions());
    if (!series.ok()) return 1;
    const double grid_best_p = BestPoint(*series).p;

    TuneOptions tune_options;
    tune_options.base = BenchOptions();
    auto tuned = TuneDecouplingWeight(data.unweighted, data.significance,
                                      tune_options);
    if (!tuned.ok()) return 1;

    auto evaluate = [&](double p) -> Result<std::pair<double, double>> {
      D2prOptions opts = BenchOptions();
      opts.p = p;
      D2PR_ASSIGN_OR_RETURN(PagerankResult pr,
                            ComputeD2pr(data.unweighted, opts));
      return std::pair<double, double>{
          PrecisionAtK(pr.scores, relevant, kTopK),
          NdcgAtK(pr.scores, gains, kTopK)};
    };
    auto at_zero = evaluate(0.0);
    auto at_best = evaluate(grid_best_p);
    auto at_tuned = evaluate(tuned->best_p);
    if (!at_zero.ok() || !at_best.ok() || !at_tuned.ok()) return 1;

    table.AddRow({data.name, StrCat("precision@", kTopK),
                  FormatDouble(at_zero->first, 3),
                  FormatDouble(grid_best_p, 1),
                  FormatDouble(at_best->first, 3),
                  FormatDouble(tuned->best_p, 2),
                  FormatDouble(at_tuned->first, 3)});
    table.AddRow({data.name, StrCat("ndcg@", kTopK),
                  FormatDouble(at_zero->second, 3),
                  FormatDouble(grid_best_p, 1),
                  FormatDouble(at_best->second, 3),
                  FormatDouble(tuned->best_p, 2),
                  FormatDouble(at_tuned->second, 3)});
    ++total;
    if (at_tuned->first >= at_zero->first) ++improved;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Tuned de-coupling matched or improved precision@%zu on %d/%d "
      "graphs.\n\n",
      kTopK, improved, total);
  ArchiveCsv(table, "accuracy_extension");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace d2pr

int main() { return d2pr::bench::Run(); }
