#include "serve/engine_router.h"

#include <algorithm>
#include <exception>
#include <latch>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/teleport.h"
#include "graph/graph_fingerprint.h"
#include "linalg/vec_ops.h"

namespace d2pr {

namespace {

ScoreCacheOptions ToScoreCacheOptions(const RouterOptions& options) {
  ScoreCacheOptions cache;
  cache.capacity = options.score_cache_capacity;
  cache.capacity_bytes = options.score_cache_capacity_bytes;
  cache.ttl = options.score_cache_ttl;
  cache.now = options.clock;
  return cache;
}

}  // namespace

EngineRouter::EngineRouter(std::shared_ptr<const CsrGraph> graph,
                           const RouterOptions& options)
    : graph_(std::move(graph)),
      options_(options),
      shard_map_(options.shard_map ? options.shard_map
                                   : std::make_shared<ModuloShardMap>()),
      score_cache_(ToScoreCacheOptions(options)),
      pool_(options.worker_threads > 0
                ? options.worker_threads
                : std::max<size_t>(size_t{1}, options.num_shards)) {
  const size_t num_shards = std::max<size_t>(size_t{1}, options.num_shards);
  if (options.policy == RoutingPolicy::kPartitionedSubgraph) {
    // Edge-partitioned serving: materialize the per-shard subgraphs once;
    // no whole-graph shard engines exist in this mode. Build can only
    // fail on a zero shard count, which the clamp above rules out.
    // The block solvers pull through the in-CSR only; skipping the
    // out-CSR halves the partition's arc memory for pure serving.
    auto partition = GraphPartition::Build(
        *graph_, {.scheme = options.partition_scheme,
                  .num_shards = num_shards,
                  .build_out_csr = false});
    D2PR_CHECK(partition.ok()) << partition.status().ToString();
    partition_ = std::make_unique<const GraphPartition>(
        std::move(partition).value());
    partition_uniform_teleport_ = UniformTeleport(graph_->num_nodes());
    // The shared per-key matrices honor the persistent store exactly as
    // a whole-graph engine does: one fingerprint, load-before-build,
    // write-through spill — the TransitionResolver is literally the same
    // class the engines own.
    const EngineOptions& eo = options_.engine_options;
    TransitionResolverOptions resolver_options;
    resolver_options.cache_capacity = eo.transition_cache_capacity;
    resolver_options.cache_dir = eo.cache_dir;
    resolver_options.persist_mode = eo.persist_mode;
    resolver_options.persist_policy = PersistPolicy::kWriteThrough;
    resolver_options.verify_checksums = eo.persist_verify_checksums;
    resolver_options.precomputed_graph_fingerprint =
        eo.precomputed_graph_fingerprint;
    partition_resolver_ =
        std::make_unique<TransitionResolver>(graph_, resolver_options);
    return;
  }
  // Shards sharing a persistent store all need the same graph
  // fingerprint; hash the edge arrays once here instead of once per
  // shard engine.
  EngineOptions shard_options = options.engine_options;
  if (!shard_options.cache_dir.empty() &&
      shard_options.persist_mode != PersistMode::kOff &&
      shard_options.precomputed_graph_fingerprint == 0) {
    shard_options.precomputed_graph_fingerprint = GraphFingerprint(*graph_);
  }
  shards_.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    shards_.push_back(std::make_unique<D2prEngine>(graph_, shard_options));
  }
  for (NodeId node = 0; node < graph_->num_nodes(); ++node) {
    if (graph_->OutDegree(node) == 0) dangling_nodes_.push_back(node);
  }
}

EngineRouter::EngineRouter(CsrGraph graph, const RouterOptions& options)
    : EngineRouter(std::make_shared<const CsrGraph>(std::move(graph)),
                   options) {}

EngineRouter EngineRouter::Borrowing(const CsrGraph& graph,
                                     const RouterOptions& options) {
  return EngineRouter(
      std::shared_ptr<const CsrGraph>(&graph, [](const CsrGraph*) {}),
      options);
}

size_t EngineRouter::ShardForTag(const std::string& tag) const {
  return std::hash<std::string>{}(tag) % num_shards();
}

size_t EngineRouter::OwnerShardOf(NodeId node) const {
  return shard_map_->OwnerOf(node, num_shards());
}

bool EngineRouter::AdvanceReferenceLruLocked(const TransitionKey& key) {
  auto it = std::find(reference_lru_.begin(), reference_lru_.end(), key);
  if (it != reference_lru_.end()) {
    reference_lru_.splice(reference_lru_.begin(), reference_lru_, it);
    return true;
  }
  const size_t capacity = options_.engine_options.transition_cache_capacity;
  if (capacity > 0) {
    reference_lru_.push_front(key);
    while (reference_lru_.size() > capacity) reference_lru_.pop_back();
  }
  return false;
}

std::vector<EngineRouter::Unit> EngineRouter::RouteLocked(
    const RankRequest& request, size_t request_index,
    std::vector<size_t>& planned_load) {
  std::vector<Unit> units;
  // Warm-tag affinity first: a trajectory must see its whole request
  // subsequence on one engine regardless of policy, or warm state (and
  // with it the bit-exact scores) would scatter.
  if (!request.warm_start_tag.empty()) {
    Unit unit;
    unit.request_index = request_index;
    unit.shard = ShardForTag(request.warm_start_tag);
    unit.request = request;
    ++planned_load[unit.shard];
    units.push_back(std::move(unit));
    return units;
  }

  if (options_.policy == RoutingPolicy::kPartitionedTeleport &&
      !request.seeds.empty() &&
      request.dangling != DanglingPolicy::kRenormalize) {
    // Seed ownership split. kRenormalize is excluded: its fixed point is
    // not linear in the teleport vector, so those requests route whole.
    std::vector<std::vector<NodeId>> owned(shards_.size());
    for (NodeId seed : request.seeds) {
      owned[shard_map_->OwnerOf(seed, shards_.size())].push_back(seed);
    }
    size_t slot = 0;
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      if (owned[shard].empty()) continue;
      Unit unit;
      unit.request_index = request_index;
      unit.shard = shard;
      unit.slot = slot++;
      unit.weight = static_cast<double>(owned[shard].size()) /
                    static_cast<double>(request.seeds.size());
      unit.request = request;
      unit.request.seeds = std::move(owned[shard]);
      ++planned_load[shard];
      units.push_back(std::move(unit));
    }
    if (units.size() > 1) {
      // MergeParts needs the FULL per-shard score vectors: the dangling
      // un-normalization reads every dangling node's score and the
      // weighted sum runs over all nodes. Sub-requests therefore solve
      // exact; the merge truncates at the end. A single-owner split
      // passes through untouched and may truncate natively on its shard.
      for (Unit& unit : units) unit.request.top_k = 0;
    }
    if (!units.empty()) return units;
    // Unreachable (non-empty seeds always have owners); fall through to
    // the strategy path for safety.
  }

  Unit unit;
  unit.request_index = request_index;
  unit.request = request;
  switch (options_.strategy) {
    case ReplicaStrategy::kRoundRobin:
      unit.shard = round_robin_next_++ % shards_.size();
      break;
    case ReplicaStrategy::kLeastLoaded: {
      size_t best = 0;
      int64_t best_load = std::numeric_limits<int64_t>::max();
      for (size_t shard = 0; shard < shards_.size(); ++shard) {
        const int64_t load =
            shards_[shard]->stats().requests_inflight.load(
                std::memory_order_relaxed) +
            static_cast<int64_t>(planned_load[shard]);
        if (load < best_load) {
          best_load = load;
          best = shard;
        }
      }
      unit.shard = best;
      break;
    }
  }
  ++planned_load[unit.shard];
  units.push_back(std::move(unit));
  return units;
}

RankResponse EngineRouter::MergeParts(const RankRequest& request,
                                      std::vector<Part> parts) const {
  RankResponse merged;
  merged.method = request.method;
  merged.converged = true;
  merged.scores.assign(static_cast<size_t>(graph_->num_nodes()), 0.0);
  for (Part& part : parts) {
    double scale = part.weight;
    if (request.dangling == DanglingPolicy::kTeleport &&
        !dangling_nodes_.empty()) {
      // Un-normalize: x_s = ((1-a) + a*m_s) * (I - aP)^-1 v_s, where m_s
      // is the dangling mass of x_s itself. Dividing by that factor
      // recovers the linear-in-teleport quantity the weighted sum of
      // sub-teleports actually combines.
      double dangling_mass = 0.0;
      for (NodeId node : dangling_nodes_) {
        dangling_mass += part.response.scores[static_cast<size_t>(node)];
      }
      scale /= (1.0 - request.alpha) + request.alpha * dangling_mass;
    }
    for (size_t i = 0; i < merged.scores.size(); ++i) {
      merged.scores[i] += scale * part.response.scores[i];
    }
    merged.iterations = std::max(merged.iterations, part.response.iterations);
    merged.pushes += part.response.pushes;
    merged.converged = merged.converged && part.response.converged;
    merged.residual = std::max(merged.residual, part.response.residual);
    // "As executed" store diagnostics survive the merge: any sub-solve
    // whose transition was mapped from the persistent store reports it.
    merged.transition_store_hit =
        merged.transition_store_hit || part.response.transition_store_hit;
  }
  NormalizeL1(merged.scores);
  if (request.top_k > 0) {
    // The sub-solves ran exact (RouteLocked strips top_k from split
    // units), so truncation happens here on the merged vector. The merge
    // is accurate only to solver tolerance, so entries within 1e-9 of
    // the boundary are served uncertified instead of claiming a
    // membership the float error cannot back.
    TruncatedTopK truncated =
        TruncateToTopK(merged.scores, request.top_k, /*certify_margin=*/1e-9);
    merged.top = std::move(truncated.entries);
    merged.uncertainty_gap = truncated.uncertainty_gap;
    merged.truncated = true;
    merged.scores.clear();
  }
  return merged;
}

Result<RankResponse> EngineRouter::ExecuteUnits(const RankRequest& request,
                                                std::vector<Unit> units) {
  std::vector<Part> parts;
  parts.reserve(units.size());
  for (Unit& unit : units) {
    Result<RankResponse> response = shards_[unit.shard]->Rank(unit.request);
    if (!response.ok()) return response.status();
    parts.push_back(Part{unit.weight, std::move(response).value()});
  }
  if (parts.size() == 1 && parts[0].weight == 1.0) {
    return std::move(parts[0].response);
  }
  return MergeParts(request, std::move(parts));
}

Result<std::shared_ptr<const TransitionSlices>> EngineRouter::PartitionSlices(
    const TransitionKey& key, bool* cache_hit, bool* store_hit) {
  // Row probabilities depend on global destination metrics (a boundary
  // target's degree is invisible inside one shard), so both SliceBuild
  // paths consume global state: kFromMatrix resolves one shared
  // whole-graph matrix (per-key single-flight over cache, store, build —
  // the same TransitionResolver discipline the whole-graph engines use)
  // and slices it; kSubgraph broadcasts the O(|V|) metric vector instead
  // and never materializes a matrix. Either way the sweeps stream
  // bitwise-identical per-arc probabilities.
  TransitionResolver::Outcome outcome;
  auto resolved = partition_resolver_->ResolveSlices(
      key, *partition_, options_.partition_slice_build, &outcome);
  *cache_hit = outcome.cache_hit;
  *store_hit = outcome.store_hit;
  return resolved;
}

Result<RankResponse> EngineRouter::RankPartitioned(const RankRequest& request,
                                                   bool allow_pool) {
  const bool cacheable =
      score_cache_.enabled() && request.warm_start_tag.empty();
  std::string memo_key;
  if (cacheable) {
    memo_key = ScoreCache::KeyFor(request);
    if (std::optional<RankResponse> memo = score_cache_.Lookup(memo_key)) {
      return std::move(*memo);
    }
  }

  // The shared parameter validation keeps this mode's errors identical
  // to D2prEngine::Rank; the two mode-specific rejections come after it
  // so they cost no O(|E|) build and no cache eviction.
  D2PR_RETURN_NOT_OK(ValidateRankRequestParameters(request));
  if (request.top_k > 0) {
    // The block solve produces one distributed score vector; certified
    // truncation would need the whole vector gathered anyway, and the
    // serving win of top-k (bounded push) does not exist in this mode.
    // Fail cleanly instead of silently serving the full-vector cost.
    return Status::InvalidArgument(
        "top-k is not supported in partitioned-subgraph routing; "
        "use a replicated or partitioned-teleport router");
  }
  if (request.method == SolverMethod::kForwardPush) {
    // Forward push walks the whole forward adjacency from its seeds; it
    // has no block formulation here. Fail cleanly instead of serving a
    // silently different algorithm.
    return Status::InvalidArgument(
        "forward push is not supported in partitioned-subgraph routing; "
        "use power or gauss-seidel, or a replicated router");
  }
  if (request.method == SolverMethod::kGaussSeidel) {
    D2PR_RETURN_NOT_OK(ValidateBlockGaussSeidelPolicy(request.dangling));
  }

  std::vector<double> seeded;
  std::span<const double> teleport;
  if (!request.seeds.empty()) {
    Result<std::vector<double>> built =
        SeededTeleport(graph_->num_nodes(), request.seeds);
    if (!built.ok()) return built.status();
    seeded = std::move(built).value();
    teleport = seeded;
  } else {
    teleport = partition_uniform_teleport_;
  }

  TransitionKey key;
  key.p = request.p;
  key.beta = graph_->weighted() ? request.beta : 0.0;
  key.metric = ResolveMetric(*graph_, request.metric);
  bool cache_hit = false;
  bool store_hit = false;
  Result<std::shared_ptr<const TransitionSlices>> slices =
      PartitionSlices(key, &cache_hit, &store_hit);
  if (!slices.ok()) return slices.status();

  PagerankOptions solver;
  solver.alpha = request.alpha;
  solver.tolerance = request.tolerance;
  solver.max_iterations = request.max_iterations;
  solver.dangling = request.dangling;

  // Shard sweeps write disjoint owned slices, so they fan out across the
  // worker pool when the caller is not itself a pool worker.
  BlockParallelFor parallel;
  if (allow_pool && partition_->num_shards() > 1) {
    parallel = [this](size_t count, const std::function<void(size_t)>& fn) {
      std::latch done(static_cast<ptrdiff_t>(count));
      std::mutex sweep_mu;
      std::exception_ptr sweep_error;
      for (size_t i = 0; i < count; ++i) {
        pool_.Submit([&done, &fn, &sweep_mu, &sweep_error, i] {
          // Count down even if fn throws: a lost tick would deadlock the
          // waiting solve (the pool survives task exceptions by design).
          struct Tick {
            std::latch& latch;
            ~Tick() { latch.count_down(); }
          } tick{done};
          try {
            fn(i);
          } catch (...) {
            // Captured and rethrown on the waiting thread: a sweep that
            // died must fail the solve, not leave its slice silently
            // unwritten under a converged-looking response.
            std::lock_guard<std::mutex> lock(sweep_mu);
            if (!sweep_error) sweep_error = std::current_exception();
          }
        });
      }
      done.wait();
      if (sweep_error) std::rethrow_exception(sweep_error);
    };
  }

  Result<PagerankResult> solved = [&]() -> Result<PagerankResult> {
    try {
      return request.method == SolverMethod::kGaussSeidel
                 ? SolveGaussSeidelPartitioned(**slices, *partition_,
                                               teleport, solver, parallel)
                 : SolvePagerankPartitioned(**slices, *partition_,
                                            teleport, solver, parallel);
    } catch (const std::exception& e) {
      return Status::Internal(
          StrCat("partitioned shard sweep threw: ", e.what()));
    } catch (...) {
      return Status::Internal("partitioned shard sweep threw");
    }
  }();
  if (!solved.ok()) return solved.status();

  RankResponse response;
  response.method = request.method;
  response.iterations = solved->iterations;
  response.converged = solved->converged;
  response.residual = solved->residual;
  response.scores = std::move(solved->scores);
  response.transition_cache_hit = cache_hit;
  response.transition_store_hit = store_hit;
  response.served_partitioned = true;
  // Warm starts are a whole-graph engine construct; tagged requests
  // solve cold here and warm_start_hit stays false.
  if (cacheable) score_cache_.Insert(memo_key, response);
  return response;
}

Result<RankResponse> EngineRouter::Rank(const RankRequest& request) {
  if (partition_) return RankPartitioned(request, /*allow_pool=*/true);
  const bool cacheable =
      score_cache_.enabled() && request.warm_start_tag.empty();
  std::string key;
  std::optional<RankResponse> memo;
  if (cacheable) {
    key = ScoreCache::KeyFor(request);
    memo = score_cache_.Lookup(key);
  }

  // The virtual reference LRU advances only for requests that succeed —
  // memo hits included — because the sequential engine validates before
  // touching its cache: a failing request must not leave a key (or, for
  // NaN parameters, an unmatchable junk key) in the reference trace.
  auto advance_reference = [this, &request] {
    std::lock_guard<std::mutex> lock(route_mu_);
    return AdvanceReferenceLruLocked(shards_[0]->ResolveKey(request));
  };

  if (memo) {
    memo->transition_cache_hit = advance_reference();
    return std::move(*memo);
  }

  std::vector<Unit> units;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    std::vector<size_t> planned_load(shards_.size(), 0);
    units = RouteLocked(request, 0, planned_load);
  }

  Result<RankResponse> response = ExecuteUnits(request, std::move(units));
  if (!response.ok()) return response;
  if (cacheable) score_cache_.Insert(key, *response);
  response->transition_cache_hit = advance_reference();
  return response;
}

Result<std::vector<RankResponse>> EngineRouter::RankBatch(
    std::span<const RankRequest> requests) {
  std::vector<RankResponse> responses(requests.size());
  if (requests.empty()) return responses;

  if (partition_) {
    // Partitioned-subgraph batches run in submission order, fail-fast —
    // exactly the sequential single-engine contract. Each solve already
    // parallelizes internally across the shard sweeps, so request-level
    // fan-out would only fight it for the same workers.
    for (size_t i = 0; i < requests.size(); ++i) {
      Result<RankResponse> response =
          RankPartitioned(requests[i], /*allow_pool=*/true);
      if (!response.ok()) return response.status();
      responses[i] = std::move(response).value();
    }
    return responses;
  }

  // Memo probes run before planning so the O(num_nodes) response copies
  // happen outside route_mu_. Duplicate memoizable requests within one
  // batch solve once: only the first occurrence of a cache key is probed
  // and routed, the rest alias to its response afterwards (the batched
  // analogue of ServingRuntime's single-flight).
  constexpr size_t kNoAlias = std::numeric_limits<size_t>::max();
  const bool cache_on = score_cache_.enabled();
  std::vector<char> memoized(requests.size(), 0);
  std::vector<size_t> alias_of(requests.size(), kNoAlias);
  std::vector<std::string> keys(requests.size());
  if (cache_on) {
    std::unordered_map<std::string, size_t> first_key_index;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].warm_start_tag.empty()) continue;
      keys[i] = ScoreCache::KeyFor(requests[i]);
      auto [it, inserted] = first_key_index.try_emplace(keys[i], i);
      if (!inserted) {
        alias_of[i] = it->second;
        continue;
      }
      if (std::optional<RankResponse> memo = score_cache_.Lookup(keys[i])) {
        responses[i] = std::move(*memo);
        memoized[i] = 1;
      }
    }
  }

  // Plan the whole batch atomically: shard assignment happens in
  // submission order.
  std::vector<std::vector<Part>> parts(requests.size());
  std::vector<std::vector<Unit>> chains(shards_.size());
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    std::vector<size_t> planned_load(shards_.size(), 0);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (memoized[i] || alias_of[i] != kNoAlias) continue;
      std::vector<Unit> units = RouteLocked(requests[i], i, planned_load);
      parts[i].resize(units.size());
      for (Unit& unit : units) {
        parts[i][unit.slot].weight = unit.weight;
        chains[unit.shard].push_back(std::move(unit));
      }
    }
  }

  std::mutex error_mu;
  size_t first_error_index = requests.size();
  Status first_error = Status::OK();

  ptrdiff_t active_chains = 0;
  for (const std::vector<Unit>& chain : chains) {
    if (!chain.empty()) ++active_chains;
  }
  std::latch done(active_chains);
  for (std::vector<Unit>& chain : chains) {
    if (chain.empty()) continue;
    pool_.Submit([this, &parts, &error_mu, &first_error_index, &first_error,
                  &done, chain = std::move(chain)] {
      // RAII tick: the pool contains task exceptions, so a throw past
      // a plain trailing count_down() would strand done.wait() forever.
      struct Tick {
        std::latch& latch;
        ~Tick() { latch.count_down(); }
      } tick{done};
      for (const Unit& unit : chain) {
        Result<RankResponse> response =
            shards_[unit.shard]->Rank(unit.request);
        if (!response.ok()) {
          // Mirror the sequential fail-fast error: of all failing
          // requests, the lowest index wins; the rest of this shard's
          // chain would never have run, so stop it.
          std::lock_guard<std::mutex> lock(error_mu);
          if (unit.request_index < first_error_index) {
            first_error_index = unit.request_index;
            first_error = response.status();
          }
          break;
        }
        // Distinct (request_index, slot) per unit: writes never collide.
        parts[unit.request_index][unit.slot].response =
            std::move(response).value();
      }
    });
  }
  done.wait();

  // The reference LRU advances for exactly the successful prefix — the
  // requests whose transitions the sequential single-engine reference
  // would have fetched before failing fast (a failing request validates
  // before touching the cache, so it never advances it).
  const size_t replayed =
      first_error_index < requests.size() ? first_error_index
                                          : requests.size();
  std::vector<bool> expected_hits(requests.size(), false);
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    for (size_t i = 0; i < replayed; ++i) {
      expected_hits[i] =
          AdvanceReferenceLruLocked(shards_[0]->ResolveKey(requests[i]));
    }
  }
  if (first_error_index < requests.size()) return first_error;

  for (size_t i = 0; i < requests.size(); ++i) {
    if (memoized[i] || alias_of[i] != kNoAlias) continue;
    if (parts[i].size() == 1 && parts[i][0].weight == 1.0) {
      responses[i] = std::move(parts[i][0].response);
    } else {
      responses[i] = MergeParts(requests[i], std::move(parts[i]));
    }
    if (cache_on && requests[i].warm_start_tag.empty()) {
      score_cache_.Insert(keys[i], responses[i]);
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (alias_of[i] != kNoAlias) responses[i] = responses[alias_of[i]];
    responses[i].transition_cache_hit = expected_hits[i];
  }
  return responses;
}

std::future<Result<RankResponse>> EngineRouter::RankAsync(
    RankRequest request) {
  auto promise = std::make_shared<std::promise<Result<RankResponse>>>();
  std::future<Result<RankResponse>> future = promise->get_future();
  // Rank() executes entirely inline (no nested pool submits), so async
  // tasks can never deadlock the fixed-size pool. The partitioned path
  // is told it runs on a worker: its shard sweeps stay inline rather
  // than submitting nested waits that could exhaust the pool.
  pool_.Submit([this, promise, request = std::move(request)] {
    promise->set_value(partition_
                           ? RankPartitioned(request, /*allow_pool=*/false)
                           : Rank(request));
  });
  return future;
}

void EngineRouter::RankAsync(RankRequest request,
                             std::function<void(Result<RankResponse>)> done,
                             std::function<Status()> gate) {
  pool_.Submit([this, request = std::move(request), done = std::move(done),
                gate = std::move(gate)]() mutable {
    if (gate) {
      Status admitted = gate();
      if (!admitted.ok()) {
        done(std::move(admitted));
        return;
      }
    }
    done(partition_ ? RankPartitioned(request, /*allow_pool=*/false)
                    : Rank(request));
  });
}

}  // namespace d2pr
