// Figure 2, application Group A: actor-actor, commenter-commenter and
// product-product graphs, where degree *penalization* (p > 0) maximizes the
// correlation between D2PR ranks and node significance. Paper shape: peak
// at moderate positive p; product-product is negative at p = 0 and stays
// high when over-penalized.

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupPSweepFigure(
      d2pr::ApplicationGroup::kPenalizationHelps,
      "Figure 2: correlation of D2PR ranks and node significance (Group A)",
      "Figure 2(a)-(c): unweighted graphs, alpha = 0.85, p in [-4, 4]",
      "figure2");
}
