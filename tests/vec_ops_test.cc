#include "linalg/vec_ops.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(VecOpsTest, Sum) {
  std::vector<double> v{1.0, -2.0, 3.5};
  EXPECT_DOUBLE_EQ(Sum(v), 2.5);
  EXPECT_DOUBLE_EQ(Sum(std::vector<double>{}), 0.0);
}

TEST(VecOpsTest, Dot) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(VecOpsTest, Norms) {
  std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(NormL1(v), 7.0);
  EXPECT_DOUBLE_EQ(NormL2(v), 5.0);
  EXPECT_DOUBLE_EQ(NormLInf(v), 4.0);
}

TEST(VecOpsTest, Diffs) {
  std::vector<double> a{1.0, 5.0, -1.0};
  std::vector<double> b{2.0, 3.0, -1.0};
  EXPECT_DOUBLE_EQ(DiffL1(a, b), 3.0);
  EXPECT_DOUBLE_EQ(DiffLInf(a, b), 2.0);
  EXPECT_DOUBLE_EQ(DiffL1(a, a), 0.0);
}

TEST(VecOpsTest, Axpy) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> out{10.0, 20.0};
  Axpy(0.5, x, out);
  EXPECT_DOUBLE_EQ(out[0], 10.5);
  EXPECT_DOUBLE_EQ(out[1], 21.0);
}

TEST(VecOpsTest, ScaleAndFill) {
  std::vector<double> v{1.0, -2.0};
  Scale(3.0, v);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], -6.0);
  Fill(7.0, v);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(VecOpsTest, NormalizeL1MakesDistribution) {
  std::vector<double> v{1.0, 3.0};
  const double norm = NormalizeL1(v);
  EXPECT_DOUBLE_EQ(norm, 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VecOpsTest, NormalizeL1ZeroVectorIsNoop) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(NormalizeL1(v), 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(VecOpsTest, UniformVector) {
  const std::vector<double> u = UniformVector(4);
  ASSERT_EQ(u.size(), 4u);
  for (double x : u) EXPECT_DOUBLE_EQ(x, 0.25);
  EXPECT_TRUE(UniformVector(0).empty());
}

TEST(VecOpsDeathTest, SizeMismatchAborts) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0, 2.0};
  EXPECT_DEATH((void)Dot(a, b), "CHECK failed");
  EXPECT_DEATH((void)DiffL1(a, b), "CHECK failed");
}

}  // namespace
}  // namespace d2pr
