// d2pr_loadgen: seeded Zipf load against a running d2pr_server.
//
// Prints one human-readable summary block. Exit codes: 0 = ran and every
// request got a well-formed reply (sheds and deadline expiries are
// replies, not failures); 1 = the run could not execute or some requests
// failed outright (transport or solver errors); 2 = usage error.

#include <cstdio>

#include "d2pr_net_flags.h"
#include "net/loadgen.h"

namespace d2pr {
namespace {

constexpr char kUsage[] =
    "usage: d2pr_loadgen --port=N [flags]\n"
    "  --port=N             server port on 127.0.0.1 (required)\n"
    "  --host=ADDR          numeric IPv4 of the server (default 127.0.0.1)\n"
    "  --connections=N      concurrent client connections (default 4)\n"
    "  --requests=N         requests per connection (default 100)\n"
    "  --zipf-s=S           popularity exponent in (0, 8] (default 1.1)\n"
    "  --zipf-n=N           seed universe; default: server's node count\n"
    "  --global-fraction=F  fraction of unseeded (global) queries\n"
    "                       (default 0)\n"
    "  --deadline-ms=N      per-request deadline, N >= 1 (default: none)\n"
    "  --seed=N             generator seed (default 1)\n"
    "  --p=P                decoupling weight of every request\n"
    "                       (default 0.5)\n"
    "  --alpha=A            residual probability (default 0.85)\n"
    "  --method=NAME        power (default), gauss-seidel, forward-push\n"
    "  --top-k=K            request truncated top-K responses, K >= 1\n"
    "                       (default: exact full-vector serving)\n";

int UsageError(const char* message) {
  std::fprintf(stderr, "%s\n%s", message, kUsage);
  return 2;
}

int Run(const Flags& flags) {
  const Status valid = ValidateLoadGenFlags(flags);
  if (!valid.ok()) return UsageError(valid.ToString().c_str());

  LoadGenOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(*flags.GetInt("port", 0));
  options.connections = static_cast<size_t>(*flags.GetInt("connections", 4));
  options.requests_per_connection =
      static_cast<size_t>(*flags.GetInt("requests", 100));
  options.zipf_s = *flags.GetDouble("zipf-s", 1.1);
  options.zipf_n = *flags.GetInt("zipf-n", 0);
  options.global_fraction = *flags.GetDouble("global-fraction", 0.0);
  options.deadline_ms =
      static_cast<uint64_t>(*flags.GetInt("deadline-ms", 0));
  options.seed = static_cast<uint64_t>(*flags.GetInt("seed", 1));
  options.base.p = *flags.GetDouble("p", 0.5);
  options.base.alpha = *flags.GetDouble("alpha", 0.85);
  options.base.top_k = static_cast<int>(*flags.GetInt("top-k", 0));
  const std::string method = flags.GetString("method");
  if (method == "gauss-seidel") {
    options.base.method = SolverMethod::kGaussSeidel;
  } else if (method == "forward-push") {
    options.base.method = SolverMethod::kForwardPush;
  }

  auto report = RunLoadGen(options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const LoadGenReport& r = report.value();
  std::printf("attempted:          %zu\n", r.attempted);
  std::printf("ok:                 %zu\n", r.ok);
  std::printf("unavailable:        %zu\n", r.unavailable);
  std::printf("deadline_exceeded:  %zu\n", r.deadline_exceeded);
  std::printf("failed:             %zu\n", r.failed);
  std::printf("p50_us:             %.1f (ok responses only)\n", r.p50_us);
  std::printf("p99_us:             %.1f (ok responses only)\n", r.p99_us);
  std::printf("elapsed_s:          %.3f\n", r.elapsed_s);
  std::printf("requests_per_s:     %.1f (served: ok / elapsed)\n",
              r.requests_per_s);
  std::printf("attempted_per_s:    %.1f (offered: attempted / elapsed)\n",
              r.attempted_per_s);
  return r.failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    return d2pr::UsageError(flags.status().ToString().c_str());
  }
  return d2pr::Run(flags.value());
}
