// d2pr_rank: command-line degree de-coupled PageRank over the D2prEngine.
//
// Rank the nodes of an edge-list graph:
//   d2pr_rank --graph=edges.txt [--directed] [--weighted]
//             [--p=0.5] [--alpha=0.85] [--beta=0] [--top=20]
//             [--method=power|gauss-seidel|forward-push]
//             [--seeds=3,17] [--scores-out=scores.txt]
//
// Auto-tune p against an external significance file (one value per line):
//   d2pr_rank --graph=edges.txt --tune --significance=sig.txt
//
// Exercise the serving runtime (repeat the query on a worker pool):
//   d2pr_rank --graph=edges.txt --threads=4 --repeat=64
//
// Shard the engine behind a router (replicated round-robin by default;
// --route=partitioned splits personalized queries by seed ownership):
//   d2pr_rank --graph=edges.txt --shards=4 --threads=4 --repeat=64
//
// Edge-partitioned serving: shard the graph itself into per-shard
// subgraphs and solve by block iteration with cross-shard mass exchange:
//   d2pr_rank --graph=edges.txt --partition=range --shards=4
//
// Print structural statistics:
//   d2pr_rank --graph=edges.txt --stats

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/flags.h"
#include "common/timer.h"
#include "common/string_util.h"
#include "core/tuner.h"
#include "d2pr_rank_flags.h"
#include "graph/graph_io.h"
#include "graph/graph_metrics.h"
#include "graph/graph_stats.h"
#include "graph/partition.h"
#include "serve/engine_router.h"
#include "serve/serving_runtime.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

constexpr char kUsage[] =
    "usage: d2pr_rank --graph=EDGELIST [options]\n"
    "  --directed           treat the edge list as directed arcs\n"
    "  --weighted           read a third column of edge weights\n"
    "  --p=FLOAT            degree de-coupling weight (default 0)\n"
    "  --alpha=FLOAT        residual probability (default 0.85)\n"
    "  --beta=FLOAT         connection-strength blend, weighted graphs\n"
    "  --top=N              print the N best nodes (default 20)\n"
    "  --top-k=K            serve a truncated top-K response: with\n"
    "                       --method=forward-push, a degree-pruned\n"
    "                       bounded push with certified set membership;\n"
    "                       exact solvers solve fully and truncate.\n"
    "                       Excludes --tune, --partition, --scores-out,\n"
    "                       and --top\n"
    "  --method=NAME        solver: power (default), gauss-seidel,\n"
    "                       or forward-push\n"
    "  --seeds=a,b,...      personalized teleportation on these nodes\n"
    "                       (not combinable with --tune)\n"
    "  --scores-out=FILE    write all scores, one per line\n"
    "  --tune               search p maximizing Spearman correlation\n"
    "  --significance=FILE  per-node values, required by --tune\n"
    "  --threads=N          serve the query on an N-worker runtime\n"
    "  --repeat=K           execute the final query K times (with\n"
    "                       --threads/--shards: as one parallel batch)\n"
    "  --shards=N           serve through an N-shard engine router\n"
    "                       (not combinable with --tune)\n"
    "  --route=NAME         routing policy, requires --shards:\n"
    "                       replicated (default), least-loaded,\n"
    "                       or partitioned\n"
    "  --partition=SCHEME   edge-partitioned serving: split the graph\n"
    "                       into per-shard subgraphs (range or hash)\n"
    "                       and solve by block iteration with\n"
    "                       cross-shard mass exchange; requires\n"
    "                       --shards, excludes --route and\n"
    "                       --method=forward-push\n"
    "  --slices=MODE        how --partition builds its per-shard\n"
    "                       transition slices: matrix (default; slice\n"
    "                       the shared whole-graph matrix) or subgraph\n"
    "                       (build shard-locally, never materializing\n"
    "                       a whole-graph matrix; bypasses --cache-dir\n"
    "                       for the transition); requires --partition\n"
    "  --cache-dir=DIR      persistent transition store: built matrices\n"
    "                       spill to DIR and later runs map them back\n"
    "                       instead of rebuilding\n"
    "  --cache-mode=MODE    store access, requires --cache-dir:\n"
    "                       off, read, write, or rw (default)\n"
    "  --stats              print structural statistics and exit\n";

int UsageError(const char* message) {
  std::fprintf(stderr, "%s\n%s", message, kUsage);
  return 2;
}

Result<std::vector<double>> ReadValuesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open: ", path));
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    double value = 0.0;
    if (!ParseDouble(stripped, &value)) {
      return Status::IoError(StrCat(path, ": bad value '", line, "'"));
    }
    values.push_back(value);
  }
  return values;
}

Result<std::vector<NodeId>> ParseSeeds(const std::string& spec) {
  std::vector<NodeId> seeds;
  for (const std::string& field : Split(spec, ',')) {
    int64_t id = 0;
    if (!ParseInt64(field, &id)) {
      return Status::InvalidArgument(StrCat("bad seed '", field, "'"));
    }
    seeds.push_back(static_cast<NodeId>(id));
  }
  return seeds;
}

int RunOrDie(const Flags& flags) {
  // Every exit-2 rule lives in ValidateRankFlags (shared with
  // tests/flags_test.cc), and it runs before the potentially large graph
  // load so a typo'd invocation fails in microseconds, not minutes.
  const Status valid = ValidateRankFlags(flags);
  if (!valid.ok()) return UsageError(valid.ToString().c_str());

  const std::string graph_path = flags.GetString("graph");
  // All re-extractions below succeed: ValidateRankFlags already parsed
  // and range-checked every value it accepts.
  auto directed = flags.GetBool("directed", false);
  auto weighted = flags.GetBool("weighted", false);
  auto p = flags.GetDouble("p", 0.0);
  auto alpha = flags.GetDouble("alpha", 0.85);
  auto beta = flags.GetDouble("beta", 0.0);
  auto top = flags.GetInt("top", 20);
  auto top_k = flags.GetInt("top-k", 0);
  auto threads = flags.GetInt("threads", 1);
  auto repeat = flags.GetInt("repeat", 1);
  auto shards = flags.GetInt("shards", 1);
  auto route = ParseRoute(flags.GetString("route"));
  const bool partitioned = flags.Has("partition");
  PartitionScheme partition_scheme = PartitionScheme::kRange;
  SliceBuild slice_build = SliceBuild::kFromMatrix;
  if (partitioned) {
    partition_scheme = *ParsePartitionScheme(flags.GetString("partition"));
    slice_build = *ParseSliceBuild(flags.GetString("slices"));
  }
  auto cache_mode = ParseCacheMode(flags.GetString("cache-mode"));
  auto method = ParseRankMethod(flags.GetString("method"));
  std::vector<NodeId> seeds;
  if (flags.Has("seeds")) {
    auto parsed = ParseSeeds(flags.GetString("seeds"));
    if (!parsed.ok()) return UsageError(parsed.status().ToString().c_str());
    seeds = std::move(parsed).value();
  }

  auto graph = ReadEdgeListText(
      graph_path, *directed ? GraphKind::kDirected : GraphKind::kUndirected,
      *weighted);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %s: %d nodes, %lld edges\n",
               graph_path.c_str(), graph->num_nodes(),
               static_cast<long long>(graph->num_edges()));

  if (flags.Has("stats")) {
    const GraphStats stats = ComputeGraphStats(*graph);
    std::printf("nodes                 %d\n", stats.num_nodes);
    std::printf("edges                 %lld\n",
                static_cast<long long>(stats.num_edges));
    std::printf("avg degree            %.3f\n", stats.avg_degree);
    std::printf("stddev degree         %.3f\n", stats.stddev_degree);
    std::printf("median nbr-deg stddev %.3f\n",
                stats.median_neighbor_degree_stddev);
    std::printf("dangling nodes        %d\n", stats.num_dangling);
    if (!graph->directed()) {
      std::printf("avg clustering        %.4f\n",
                  AverageClusteringCoefficient(*graph));
      std::printf("degree assortativity  %+.4f\n",
                  DegreeAssortativity(*graph));
    }
    return 0;
  }

  RankRequest request;
  request.p = *p;
  request.alpha = *alpha;
  request.beta = *beta;
  request.method = *method;
  request.top_k = *top_k;

  EngineOptions engine_options;
  if (flags.Has("cache-dir")) {
    engine_options.cache_dir = flags.GetString("cache-dir");
    engine_options.persist_mode = *cache_mode;
  }

  // One engine serves the whole invocation: when --tune runs first, the
  // final ranking's transition matrix is typically already cached from
  // the best probe.
  D2prEngine engine = D2prEngine::Borrowing(*graph, engine_options);

  if (flags.Has("tune")) {
    auto significance = ReadValuesFile(flags.GetString("significance"));
    if (!significance.ok()) {
      std::fprintf(stderr, "%s\n",
                   significance.status().ToString().c_str());
      return 1;
    }
    TuneOptions tune_options;
    tune_options.base.alpha = request.alpha;
    tune_options.base.beta = request.beta;
    auto tuned = TuneDecouplingWeight(engine, *significance, tune_options);
    if (!tuned.ok()) {
      std::fprintf(stderr, "%s\n", tuned.status().ToString().c_str());
      return 1;
    }
    std::printf("tuned p = %+.3f  (Spearman %.4f over %zu evaluations)\n",
                tuned->best_p, tuned->best_correlation,
                tuned->evaluated.size());
    request.p = tuned->best_p;
    // The tuner's last probe converged at (or within a grid cell of)
    // best_p under this tag; the final solve starts from it.
    request.warm_start_tag = kTuneWarmStartTag;
  }

  request.seeds = std::move(seeds);

  // Transition accounting printed for every path — single engine, pooled
  // runtime, and router alike — so runs are comparable no matter how they
  // were served. The router path fills this from its shard fleet; every
  // other path reads the one engine after the solve.
  struct TransitionReport {
    int64_t builds = 0;
    int64_t cache_hits = 0;
    int64_t cache_lookups = 0;
    int64_t store_loads = 0;
    int64_t store_saves = 0;

    void Accumulate(const D2prEngine& from) {
      const EngineStats snapshot = from.stats();
      builds += snapshot.transition_builds;
      cache_hits += from.transition_cache_lookup_hits();
      cache_lookups += from.transition_cache_lookup_hits() +
                       from.transition_cache_lookup_misses();
      store_loads += snapshot.transition_store_loads;
      store_saves += snapshot.transition_store_saves;
    }
  };
  TransitionReport transition_report;

  // One throughput report for every serving configuration: shards and
  // threads compose, and the single-runtime path reports as one shard.
  auto report_throughput = [](size_t served, size_t num_shards,
                              size_t num_threads, double elapsed_ms,
                              const ScoreCacheStats& cache) {
    std::fprintf(
        stderr,
        "served %zu request(s) on %zu shard(s) x %zu thread(s) in "
        "%.1f ms (%.0f req/s, score-cache hits %lld/%lld lookups)\n",
        served, num_shards, num_threads, elapsed_ms,
        elapsed_ms > 0.0 ? served / (elapsed_ms / 1e3) : 0.0,
        static_cast<long long>(cache.hits),
        static_cast<long long>(cache.hits + cache.misses));
  };

  Result<RankResponse> ranked = [&]() -> Result<RankResponse> {
    if (*threads == 1 && *repeat == 1 && *shards == 1 && !partitioned) {
      return engine.Rank(request);
    }
    // Serving path: K identical queries as one parallel batch. The
    // warm-start tag is dropped — repeats are independent queries, not
    // one trajectory — so the batch exercises the pool, the router, and
    // the score cache the way serving traffic would.
    RankRequest query = request;
    query.warm_start_tag.clear();
    std::vector<RankRequest> batch(static_cast<size_t>(*repeat), query);

    if (*shards > 1 || partitioned) {
      RouterOptions router_options;
      router_options.num_shards = static_cast<size_t>(*shards);
      router_options.policy = partitioned
                                  ? RoutingPolicy::kPartitionedSubgraph
                                  : route->policy;
      router_options.partition_scheme = partition_scheme;
      router_options.partition_slice_build = slice_build;
      router_options.strategy = route->strategy;
      router_options.score_cache_capacity = 256;
      // Shards share the persistent store: the first run spills each
      // matrix once, later shards and later runs map it back. The outer
      // engine already fingerprinted the graph; reuse it.
      router_options.engine_options = engine_options;
      if (engine.persistent_store_enabled()) {
        router_options.engine_options.precomputed_graph_fingerprint =
            engine.graph_fingerprint();
      }
      // An explicit --threads (even 1: a single-threaded sharding
      // baseline) sizes the pool; unset defaults to one worker per shard.
      if (flags.Has("threads")) {
        router_options.worker_threads = static_cast<size_t>(*threads);
      }
      // The shards share the engine's already-loaded graph handle.
      EngineRouter router(engine.graph_ptr(), router_options);
      if (router.partitioned_subgraph()) {
        std::fprintf(stderr, "%s\n",
                     router.partition().ToString().c_str());
      }
      Timer timer;
      auto responses = router.RankBatch(batch);
      if (!responses.ok()) return responses.status();
      report_throughput(batch.size(), router.num_shards(),
                        router.num_worker_threads(), timer.ElapsedMillis(),
                        router.score_cache().stats());
      if (router.partitioned_subgraph()) {
        // No shard engines exist in this mode; the router's shared
        // transition cache and store counters are the whole accounting.
        transition_report.builds += router.partition_transition_builds();
        transition_report.cache_hits +=
            router.partition_transition_cache_hits();
        transition_report.cache_lookups +=
            router.partition_transition_cache_hits() +
            router.partition_transition_cache_misses();
        transition_report.store_loads +=
            router.partition_transition_store_loads();
        transition_report.store_saves +=
            router.partition_transition_store_saves();
      } else {
        for (size_t s = 0; s < router.num_shards(); ++s) {
          transition_report.Accumulate(router.shard(s));
        }
      }
      return std::move(responses->front());
    }

    ServingOptions serve_options;
    serve_options.num_threads = static_cast<size_t>(*threads);
    ServingRuntime runtime = ServingRuntime::Borrowing(engine, serve_options);
    Timer timer;
    auto responses = runtime.RankBatch(batch);
    if (!responses.ok()) return responses.status();
    report_throughput(batch.size(), 1, runtime.num_threads(),
                      timer.ElapsedMillis(), runtime.score_cache().stats());
    return std::move(responses->front());
  }();
  if (!ranked.ok()) {
    std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
    return 1;
  }
  // Every non-router path (single query, repeated queries, pooled
  // runtime) served through this one engine.
  if (*shards == 1) transition_report.Accumulate(engine);
  std::fprintf(
      stderr,
      "transition stats: %lld build(s), cache hits %lld/%lld lookups, "
      "store loads %lld, store saves %lld\n",
      static_cast<long long>(transition_report.builds),
      static_cast<long long>(transition_report.cache_hits),
      static_cast<long long>(transition_report.cache_lookups),
      static_cast<long long>(transition_report.store_loads),
      static_cast<long long>(transition_report.store_saves));
  if (ranked->method == SolverMethod::kForwardPush) {
    std::fprintf(stderr,
                 "solved with %s in %lld pushes (completed: %s)\n",
                 SolverMethodName(ranked->method),
                 static_cast<long long>(ranked->pushes),
                 ranked->converged ? "yes" : "no");
  } else {
    std::fprintf(
        stderr,
        "solved with %s in %d iterations (converged: %s, cached "
        "transition: %s, persisted transition: %s)\n",
        SolverMethodName(ranked->method), ranked->iterations,
        ranked->converged ? "yes" : "no",
        ranked->transition_cache_hit ? "yes" : "no",
        ranked->transition_store_hit ? "yes" : "no");
  }

  const std::string out_path = flags.GetString("scores-out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    for (double score : ranked->scores) {
      out << FormatGeneral(score, 17) << '\n';
    }
    if (!out) {
      std::fprintf(stderr, "failed writing %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu scores to %s\n", ranked->scores.size(),
                 out_path.c_str());
  }

  if (ranked->truncated) {
    // Truncated serving: the response IS the top list; print it with its
    // certification column instead of re-ranking a score vector.
    std::fprintf(stderr, "top-k uncertainty gap: %.3e\n",
                 ranked->uncertainty_gap);
    std::printf("rank  node  score         certified\n");
    for (size_t i = 0; i < ranked->top.size(); ++i) {
      std::printf("%4zu  %4d  %.6e  %s\n", i + 1, ranked->top[i].node,
                  ranked->top[i].score,
                  ranked->top[i].certified ? "yes" : "no");
    }
    return 0;
  }

  std::printf("rank  node  score\n");
  const std::vector<NodeId> best =
      TopK(ranked->scores, static_cast<size_t>(*top));
  for (size_t i = 0; i < best.size(); ++i) {
    std::printf("%4zu  %4d  %.6e\n", i + 1, best[i],
                ranked->scores[static_cast<size_t>(best[i])]);
  }
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  return d2pr::RunOrDie(*flags);
}
