#include "core/transition.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace d2pr {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Successful whole-graph materializations (see BuildCount()).
std::atomic<uint64_t> g_build_count{0};

}  // namespace

double DecoupledArcExponent(double log_metric_target, double p) {
  if (log_metric_target == kNegInf) {
    // metric(j) = 0: limit semantics. p > 0 => j dominates the row
    // (+inf); p < 0 => weight 0 (-inf); p = 0 => neutral (0^0 := 1).
    return p > 0.0   ? std::numeric_limits<double>::infinity()
           : p < 0.0 ? kNegInf
                     : 0.0;
  }
  return -p * log_metric_target;
}

double DecoupledArcNumerator(double exponent, double max_exponent) {
  if (std::isinf(max_exponent) && max_exponent > 0.0) {
    // At least one +inf exponent: those destinations split the row.
    return (std::isinf(exponent) && exponent > 0.0) ? 1.0 : 0.0;
  }
  if (exponent == kNegInf) return 0.0;
  return std::exp(exponent - max_exponent);
}

double BlendedArcProb(double numerator, double row_sum, double beta,
                      double arc_weight, double strength_total) {
  const double t_decoupled = numerator / row_sum;
  if (beta > 0.0) {
    const double t_conn = arc_weight / strength_total;
    return beta * t_conn + (1.0 - beta) * t_decoupled;
  }
  return t_decoupled;
}

Status ValidateTransitionConfig(const CsrGraph& graph,
                                const TransitionConfig& config) {
  return ValidateTransitionConfig(graph.weighted(), config);
}

Status ValidateTransitionConfig(bool weighted,
                                const TransitionConfig& config) {
  if (!std::isfinite(config.p)) {
    return Status::InvalidArgument(
        StrCat("de-coupling weight p must be finite, got ", config.p));
  }
  if (config.beta < 0.0 || config.beta > 1.0) {
    return Status::InvalidArgument(
        StrCat("beta must lie in [0, 1], got ", config.beta));
  }
  const DegreeMetric metric = ResolveMetric(weighted, config.metric);
  if (metric == DegreeMetric::kOutStrength && !weighted) {
    return Status::InvalidArgument(
        "kOutStrength metric requires a weighted graph");
  }
  return Status::OK();
}

DegreeMetric ResolveMetric(const CsrGraph& graph, DegreeMetric metric) {
  return ResolveMetric(graph.weighted(), metric);
}

DegreeMetric ResolveMetric(bool weighted, DegreeMetric metric) {
  if (metric != DegreeMetric::kAuto) return metric;
  return weighted ? DegreeMetric::kOutStrength : DegreeMetric::kOutDegree;
}

std::vector<double> MetricValues(const CsrGraph& graph, DegreeMetric metric) {
  const DegreeMetric resolved = ResolveMetric(graph, metric);
  const NodeId n = graph.num_nodes();
  std::vector<double> values(n);
  switch (resolved) {
    case DegreeMetric::kOutDegree:
      for (NodeId v = 0; v < n; ++v) {
        values[v] = static_cast<double>(graph.OutDegree(v));
      }
      break;
    case DegreeMetric::kOutStrength:
      for (NodeId v = 0; v < n; ++v) values[v] = graph.OutStrength(v);
      break;
    case DegreeMetric::kInDegree: {
      const std::vector<EdgeIndex> in = graph.InDegrees();
      for (NodeId v = 0; v < n; ++v) values[v] = static_cast<double>(in[v]);
      break;
    }
    case DegreeMetric::kAuto:
      D2PR_CHECK(false) << "kAuto must be resolved";
  }
  return values;
}

Result<TransitionMatrix> TransitionMatrix::Build(
    const CsrGraph& graph, const TransitionConfig& config) {
  D2PR_RETURN_NOT_OK(ValidateTransitionConfig(graph, config));
  const DegreeMetric metric = ResolveMetric(graph, config.metric);
  // On unweighted graphs connection strength is uniform, which equals the
  // p = 0 de-coupled matrix; folding beta into 0 keeps one code path.
  const double beta = graph.weighted() ? config.beta : 0.0;
  const double p = config.p;

  const NodeId n = graph.num_nodes();
  const std::vector<double> metric_values = MetricValues(graph, metric);

  std::vector<double> probs(static_cast<size_t>(graph.num_arcs()), 0.0);
  std::vector<uint8_t> dangling(static_cast<size_t>(n), 0);

  // Log-metric per node; metric 0 marked with -inf sentinel.
  std::vector<double> log_metric(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    log_metric[v] =
        metric_values[v] > 0.0 ? std::log(metric_values[v]) : kNegInf;
  }

  std::vector<double> row;  // scratch: de-coupled weights of one source row
  for (NodeId i = 0; i < n; ++i) {
    const EdgeIndex begin = graph.ArcBegin(i);
    const EdgeIndex end = begin + graph.OutDegree(i);
    if (begin == end) {
      dangling[static_cast<size_t>(i)] = 1;
      continue;
    }

    // --- Degree de-coupled component T_D: softmax of -p * log(metric). ---
    row.clear();
    double max_exponent = kNegInf;
    for (EdgeIndex e = begin; e < end; ++e) {
      const NodeId j = graph.targets()[static_cast<size_t>(e)];
      const double exponent = DecoupledArcExponent(log_metric[j], p);
      row.push_back(exponent);
      max_exponent = std::max(max_exponent, exponent);
    }
    double row_sum = 0.0;
    for (double& exponent : row) {
      exponent = DecoupledArcNumerator(exponent, max_exponent);
      row_sum += exponent;
    }
    if (row_sum == 0.0) {
      // Every destination had metric 0 and p < 0 (all weights vanish in the
      // limit). Fall back to a uniform row: no degree information exists to
      // differentiate the neighbors.
      std::fill(row.begin(), row.end(), 1.0);
      row_sum = static_cast<double>(row.size());
    }

    // --- Connection-strength component T_conn (only if beta > 0). ---
    const double strength_total = beta > 0.0 ? graph.OutStrength(i) : 0.0;

    for (EdgeIndex e = begin; e < end; ++e) {
      const size_t arc = static_cast<size_t>(e);
      probs[arc] = BlendedArcProb(
          row[static_cast<size_t>(e - begin)], row_sum, beta,
          beta > 0.0 ? graph.weights()[arc] : 0.0, strength_total);
    }
  }

  g_build_count.fetch_add(1, std::memory_order_relaxed);
  return TransitionMatrix(n, std::move(probs), std::move(dangling));
}

uint64_t TransitionMatrix::BuildCount() {
  return g_build_count.load(std::memory_order_relaxed);
}

std::vector<NodeId> TransitionMatrix::DanglingNodes() const {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (dangling_[static_cast<size_t>(v)]) nodes.push_back(v);
  }
  return nodes;
}

void TransitionMatrix::Multiply(const CsrGraph& graph,
                                std::span<const double> x,
                                std::span<double> out) const {
  D2PR_CHECK_EQ(x.size(), static_cast<size_t>(num_nodes_));
  D2PR_CHECK_EQ(out.size(), static_cast<size_t>(num_nodes_));
  std::fill(out.begin(), out.end(), 0.0);
  const auto targets = graph.targets();
  for (NodeId i = 0; i < num_nodes_; ++i) {
    const double mass = x[static_cast<size_t>(i)];
    if (mass == 0.0) continue;
    const EdgeIndex begin = graph.ArcBegin(i);
    const EdgeIndex end = begin + graph.OutDegree(i);
    for (EdgeIndex e = begin; e < end; ++e) {
      out[static_cast<size_t>(targets[static_cast<size_t>(e)])] +=
          mass * probs_[static_cast<size_t>(e)];
    }
  }
}

double TransitionMatrix::Prob(const CsrGraph& graph, NodeId u,
                              NodeId v) const {
  auto row = graph.OutNeighbors(u);
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return 0.0;
  return probs_[static_cast<size_t>(graph.ArcBegin(u) + (it - row.begin()))];
}

}  // namespace d2pr
