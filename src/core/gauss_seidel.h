// Gauss-Seidel PageRank solver (ablation alternative to power iteration).
//
// Solves the same fixed point  x = α·T·x + (1-α)·t  by sweeping nodes in
// order and using already-updated values within the sweep. On typical
// graphs this roughly halves the iteration count versus Jacobi-style power
// iteration at identical per-sweep cost; the library keeps power iteration
// as the default because its iterates remain exact probability
// distributions mid-solve. The bench perf_solver_ablation quantifies the
// trade-off.

#ifndef D2PR_CORE_GAUSS_SEIDEL_H_
#define D2PR_CORE_GAUSS_SEIDEL_H_

#include <span>

#include "common/result.h"
#include "core/pagerank.h"
#include "core/transition.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Runs Gauss-Seidel sweeps until the L1 change between consecutive
/// iterates drops below options.tolerance.
///
/// Requirements mirror SolvePagerank. Dangling handling follows
/// options.dangling, evaluated against the previous iterate's dangling
/// mass (a half-lagged approximation that preserves the fixed point).
/// The returned scores are L1-normalized.
Result<PagerankResult> SolvePagerankGaussSeidel(
    const CsrGraph& graph, const TransitionMatrix& transition,
    std::span<const double> teleport, const PagerankOptions& options);

/// \brief Overload with the uniform teleport vector.
Result<PagerankResult> SolvePagerankGaussSeidel(
    const CsrGraph& graph, const TransitionMatrix& transition,
    const PagerankOptions& options = {});

}  // namespace d2pr

#endif  // D2PR_CORE_GAUSS_SEIDEL_H_
