#include "datagen/ratings.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"
#include "datagen/distributions.h"

namespace d2pr {

Result<RatingsTable> GenerateRatings(const BipartiteWorld& world,
                                     const RatingsConfig& config) {
  const NodeId num_venues = world.config.num_venues;
  if (config.num_users <= 0) {
    return Status::InvalidArgument("num_users must be positive");
  }
  if (config.ratings_per_user <= 0) {
    return Status::InvalidArgument("ratings_per_user must be positive");
  }
  if (config.user_bias_sigma < 0.0 || config.taste_sigma < 0.0) {
    return Status::InvalidArgument("noise sigmas must be >= 0");
  }
  if (config.popularity_exponent < 0.0) {
    return Status::InvalidArgument("popularity_exponent must be >= 0");
  }

  Rng rng(config.seed);
  const int32_t per_user = std::min<int32_t>(
      config.ratings_per_user, static_cast<int32_t>(num_venues));

  // Popularity-biased venue selection weights.
  std::vector<double> weights(static_cast<size_t>(num_venues));
  for (NodeId r = 0; r < num_venues; ++r) {
    const double size =
        1.0 + static_cast<double>(world.venue_members[static_cast<size_t>(r)]
                                      .size());
    weights[static_cast<size_t>(r)] =
        std::pow(size, config.popularity_exponent);
  }

  RatingsTable table;
  table.ratings.reserve(static_cast<size_t>(config.num_users) * per_user);
  table.venue_mean.assign(static_cast<size_t>(num_venues), 0.0);
  table.venue_count.assign(static_cast<size_t>(num_venues), 0);

  double total_stars = 0.0;
  for (int32_t user = 0; user < config.num_users; ++user) {
    const double bias = rng.Normal(0.0, config.user_bias_sigma);
    const std::vector<int32_t> venues =
        WeightedSampleWithoutReplacement(weights, per_user, &rng);
    for (int32_t venue : venues) {
      const double quality =
          world.venue_quality[static_cast<size_t>(venue)];
      const double raw = 1.0 + 4.0 * quality + bias +
                         rng.Normal(0.0, config.taste_sigma);
      Rating rating;
      rating.user = user;
      rating.item = venue;
      rating.stars = std::clamp(raw, 1.0, 5.0);
      table.venue_mean[static_cast<size_t>(venue)] += rating.stars;
      ++table.venue_count[static_cast<size_t>(venue)];
      total_stars += rating.stars;
      table.ratings.push_back(rating);
    }
  }

  table.global_mean =
      table.ratings.empty()
          ? 3.0
          : total_stars / static_cast<double>(table.ratings.size());
  for (NodeId r = 0; r < num_venues; ++r) {
    const size_t idx = static_cast<size_t>(r);
    table.venue_mean[idx] = table.venue_count[idx] > 0
                                ? table.venue_mean[idx] /
                                      static_cast<double>(
                                          table.venue_count[idx])
                                : table.global_mean;
  }
  return table;
}

}  // namespace d2pr
