// Wire-protocol codecs: exact round-trips across the full enum space,
// and rejection (never a crash, never a bogus success) of malformed
// bytes — truncation at every boundary, oversize lengths, bad magic and
// version, corrupted payloads.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"

namespace d2pr {
namespace {

void ExpectRequestsEqual(const WireRankRequest& a, const WireRankRequest& b) {
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.request.p, b.request.p);
  EXPECT_EQ(a.request.beta, b.request.beta);
  EXPECT_EQ(a.request.metric, b.request.metric);
  EXPECT_EQ(a.request.alpha, b.request.alpha);
  EXPECT_EQ(a.request.tolerance, b.request.tolerance);
  EXPECT_EQ(a.request.max_iterations, b.request.max_iterations);
  EXPECT_EQ(a.request.dangling, b.request.dangling);
  EXPECT_EQ(a.request.method, b.request.method);
  EXPECT_EQ(a.request.push_epsilon, b.request.push_epsilon);
  EXPECT_EQ(a.request.seeds, b.request.seeds);
  EXPECT_EQ(a.request.warm_start_tag, b.request.warm_start_tag);
  EXPECT_EQ(a.request.top_k, b.request.top_k);
}

TEST(NetWireTest, RankRequestRoundTripsEverySolverMetricDanglingCombo) {
  const SolverMethod methods[] = {SolverMethod::kPower,
                                  SolverMethod::kGaussSeidel,
                                  SolverMethod::kForwardPush};
  const DegreeMetric metrics[] = {DegreeMetric::kAuto,
                                  DegreeMetric::kOutDegree,
                                  DegreeMetric::kOutStrength,
                                  DegreeMetric::kInDegree};
  const DanglingPolicy danglings[] = {DanglingPolicy::kTeleport,
                                      DanglingPolicy::kSelfLoop,
                                      DanglingPolicy::kRenormalize};
  int combo = 0;
  for (SolverMethod method : methods) {
    for (DegreeMetric metric : metrics) {
      for (DanglingPolicy dangling : danglings) {
        SCOPED_TRACE("combo " + std::to_string(combo));
        WireRankRequest wire;
        wire.deadline_ms = static_cast<uint64_t>(combo) * 17;
        wire.request.p = -2.5 + combo * 0.125;
        wire.request.beta = (combo % 5) * 0.25;
        wire.request.metric = metric;
        wire.request.alpha = 0.5 + (combo % 4) * 0.1;
        wire.request.tolerance = 1e-10;
        wire.request.max_iterations = 100 + combo;
        wire.request.dangling = dangling;
        wire.request.method = method;
        wire.request.push_epsilon = 1e-7 * (1 + combo);
        if (combo % 2 == 0) wire.request.seeds = {0, 7, 42};
        if (combo % 3 == 0) wire.request.warm_start_tag = "sweep-p";
        auto decoded = DecodeRankRequest(EncodeRankRequest(wire));
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        ExpectRequestsEqual(decoded.value(), wire);
        ++combo;
      }
    }
  }
  EXPECT_EQ(combo, 36);
}

TEST(NetWireTest, RankRequestRoundTripsBitExactDoubles) {
  // NaN tolerance or signed-zero p must survive the wire bit-for-bit —
  // the server re-validates; the codec must not launder values.
  WireRankRequest wire;
  wire.request.p = -0.0;
  wire.request.alpha = std::numeric_limits<double>::quiet_NaN();
  auto decoded = DecodeRankRequest(EncodeRankRequest(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::signbit(decoded.value().request.p));
  EXPECT_TRUE(std::isnan(decoded.value().request.alpha));
}

TEST(NetWireTest, RankResponseRoundTripsAllFlagCombinations) {
  for (uint32_t flags = 0; flags < 32; ++flags) {
    SCOPED_TRACE("flags " + std::to_string(flags));
    RankResponse response;
    response.scores = {0.25, 0.5, 0.125, 0.125};
    response.method = static_cast<SolverMethod>(flags % 3);
    response.iterations = static_cast<int>(flags) * 3;
    response.pushes = 1'000'000'000'000ll + flags;
    response.residual = 1e-11 * flags;
    response.converged = (flags & 1) != 0;
    response.transition_cache_hit = (flags & 2) != 0;
    response.transition_store_hit = (flags & 4) != 0;
    response.warm_start_hit = (flags & 8) != 0;
    response.served_partitioned = (flags & 16) != 0;
    auto decoded = DecodeRankResponse(EncodeRankResponse(response));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().scores, response.scores);
    EXPECT_EQ(decoded.value().method, response.method);
    EXPECT_EQ(decoded.value().iterations, response.iterations);
    EXPECT_EQ(decoded.value().pushes, response.pushes);
    EXPECT_EQ(decoded.value().residual, response.residual);
    EXPECT_EQ(decoded.value().converged, response.converged);
    EXPECT_EQ(decoded.value().transition_cache_hit,
              response.transition_cache_hit);
    EXPECT_EQ(decoded.value().transition_store_hit,
              response.transition_store_hit);
    EXPECT_EQ(decoded.value().warm_start_hit, response.warm_start_hit);
    EXPECT_EQ(decoded.value().served_partitioned,
              response.served_partitioned);
  }
}

TEST(NetWireTest, StatusPayloadRoundTripsEveryCode) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kUnavailable);
       ++code) {
    SCOPED_TRACE("code " + std::to_string(code));
    const Status original(static_cast<StatusCode>(code),
                          "message for code " + std::to_string(code));
    Status decoded;
    const Status ok = DecodeStatusPayload(EncodeStatusPayload(original),
                                          &decoded);
    ASSERT_TRUE(ok.ok()) << ok.ToString();
    EXPECT_EQ(decoded.code(), original.code());
    if (code != 0) EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(NetWireTest, ServerInfoRoundTrips) {
  ServerInfo info{123456789ull, 987654321ull, 4, 8};
  auto decoded = DecodeServerInfo(EncodeServerInfo(info));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().num_nodes, info.num_nodes);
  EXPECT_EQ(decoded.value().num_arcs, info.num_arcs);
  EXPECT_EQ(decoded.value().num_shards, info.num_shards);
  EXPECT_EQ(decoded.value().num_threads, info.num_threads);
}

TEST(NetWireTest, FrameHeaderRoundTrips) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kRankResponse, 0xdeadbeefcafef00dull, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  auto header = DecodeFrameHeader(frame);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().payload_len, payload.size());
  EXPECT_EQ(header.value().type, FrameType::kRankResponse);
  EXPECT_EQ(header.value().request_id, 0xdeadbeefcafef00dull);
}

TEST(NetWireTest, FrameHeaderRejectsBadMagicVersionTypeAndLength) {
  const std::vector<uint8_t> good =
      EncodeFrame(FrameType::kStatus, 7, std::vector<uint8_t>{});
  {
    std::vector<uint8_t> bad = good;
    bad[4] ^= 0xff;  // magic
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[8] = 99;  // version
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[10] = 0;  // type 0: below the valid range
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
    bad[10] = 200;  // far above it
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    // payload_len = kMaxPayloadBytes + 1 (little-endian at offset 0).
    const uint32_t oversize = kMaxPayloadBytes + 1;
    bad[0] = static_cast<uint8_t>(oversize);
    bad[1] = static_cast<uint8_t>(oversize >> 8);
    bad[2] = static_cast<uint8_t>(oversize >> 16);
    bad[3] = static_cast<uint8_t>(oversize >> 24);
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
}

TEST(NetWireTest, FrameHeaderRejectsEveryTruncation) {
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kInfoRequest, 1, std::vector<uint8_t>{});
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    SCOPED_TRACE("length " + std::to_string(len));
    EXPECT_FALSE(
        DecodeFrameHeader(std::span<const uint8_t>(frame.data(), len)).ok());
  }
}

TEST(NetWireTest, PayloadDecodersRejectEveryTruncation) {
  WireRankRequest wire;
  wire.deadline_ms = 250;
  wire.request.p = 0.5;
  wire.request.seeds = {3, 1, 4, 1, 5};
  wire.request.warm_start_tag = "trajectory";
  const std::vector<uint8_t> request_payload = EncodeRankRequest(wire);
  for (size_t len = 0; len < request_payload.size(); ++len) {
    SCOPED_TRACE("request truncated to " + std::to_string(len));
    EXPECT_FALSE(
        DecodeRankRequest({request_payload.data(), len}).ok());
  }

  RankResponse response;
  response.scores = {0.5, 0.25, 0.25};
  response.converged = true;
  const std::vector<uint8_t> response_payload = EncodeRankResponse(response);
  for (size_t len = 0; len < response_payload.size(); ++len) {
    SCOPED_TRACE("response truncated to " + std::to_string(len));
    EXPECT_FALSE(
        DecodeRankResponse({response_payload.data(), len}).ok());
  }

  const std::vector<uint8_t> status_payload =
      EncodeStatusPayload(Status::InvalidArgument("bad alpha"));
  for (size_t len = 0; len < status_payload.size(); ++len) {
    SCOPED_TRACE("status truncated to " + std::to_string(len));
    Status decoded;
    EXPECT_FALSE(
        DecodeStatusPayload({status_payload.data(), len}, &decoded).ok());
  }

  const std::vector<uint8_t> info_payload =
      EncodeServerInfo(ServerInfo{10, 20, 2, 4});
  for (size_t len = 0; len < info_payload.size(); ++len) {
    SCOPED_TRACE("info truncated to " + std::to_string(len));
    EXPECT_FALSE(DecodeServerInfo({info_payload.data(), len}).ok());
  }
}

TEST(NetWireTest, PayloadDecodersRejectTrailingGarbage) {
  WireRankRequest wire;
  wire.request.seeds = {1};
  std::vector<uint8_t> padded = EncodeRankRequest(wire);
  padded.push_back(0);
  EXPECT_FALSE(DecodeRankRequest(padded).ok());

  std::vector<uint8_t> response = EncodeRankResponse(RankResponse{});
  response.push_back(0);
  EXPECT_FALSE(DecodeRankResponse(response).ok());
}

TEST(NetWireTest, RankRequestRejectsOutOfRangeEnums) {
  WireRankRequest wire;
  std::vector<uint8_t> payload = EncodeRankRequest(wire);
  // metric is the u32 after deadline(8) + p(8) + beta(8) = offset 24.
  payload[24] = 200;
  EXPECT_FALSE(DecodeRankRequest(payload).ok());
}

TEST(NetWireTest, RankRequestRejectsLyingSeedCount) {
  // A seed count larger than the remaining bytes must be rejected before
  // any allocation sized from it.
  WireRankRequest wire;
  wire.request.seeds = {1, 2};
  std::vector<uint8_t> payload = EncodeRankRequest(wire);
  // num_seeds is the u64 at offset 8*6 + 4*4 = 64 (after deadline, p,
  // beta, metric, alpha, tolerance, max_iterations, dangling, method,
  // push_epsilon).
  const size_t seed_count_offset = 64;
  for (int b = 0; b < 8; ++b) payload[seed_count_offset + b] = 0xff;
  EXPECT_FALSE(DecodeRankRequest(payload).ok());
}

// --- top-k extension ---

TEST(NetWireTopKTest, RequestTopKRoundTrips) {
  for (int top_k : {1, 10, 5000, std::numeric_limits<int32_t>::max()}) {
    SCOPED_TRACE("top_k " + std::to_string(top_k));
    WireRankRequest wire;
    wire.request.seeds = {3, 9};
    wire.request.method = SolverMethod::kForwardPush;
    wire.request.top_k = top_k;
    auto decoded = DecodeRankRequest(EncodeRankRequest(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectRequestsEqual(decoded.value(), wire);
  }
}

TEST(NetWireTopKTest, ExactRequestIsByteIdenticalToOldFormat) {
  // top_k = 0 must not be encoded at all: the exact-serving frame is the
  // pre-top-k frame, so old servers and new servers read the same bytes.
  WireRankRequest wire;
  wire.request.seeds = {1, 2, 3};
  wire.request.warm_start_tag = "tag";
  const std::vector<uint8_t> exact = EncodeRankRequest(wire);
  wire.request.top_k = 7;
  const std::vector<uint8_t> truncated = EncodeRankRequest(wire);
  EXPECT_EQ(truncated.size(), exact.size() + 4);
  EXPECT_TRUE(std::equal(exact.begin(), exact.end(), truncated.begin()));

  // And an old-format frame (no trailing field) decodes as top_k = 0.
  auto decoded = DecodeRankRequest(exact);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request.top_k, 0);
}

TEST(NetWireTopKTest, RequestRejectsOutOfRangeTopK) {
  WireRankRequest wire;
  wire.request.top_k = 1;
  std::vector<uint8_t> payload = EncodeRankRequest(wire);
  // Overwrite the trailing u32 with a value above INT32_MAX.
  const size_t at = payload.size() - 4;
  payload[at] = 0xff;
  payload[at + 1] = 0xff;
  payload[at + 2] = 0xff;
  payload[at + 3] = 0xff;
  auto decoded = DecodeRankRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("top_k"), std::string::npos);
}

TEST(NetWireTopKTest, RequestWithTopKRejectsEveryRealTruncation) {
  WireRankRequest wire;
  wire.request.seeds = {3, 1, 4};
  wire.request.warm_start_tag = "t";
  wire.request.top_k = 12;
  const std::vector<uint8_t> payload = EncodeRankRequest(wire);
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len));
    auto decoded = DecodeRankRequest({payload.data(), len});
    if (len == payload.size() - 4) {
      // Dropping exactly the optional field yields a valid old-format
      // frame — the one truncation that is by construction decodable,
      // and it must read back as exact serving, not a garbled k.
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value().request.top_k, 0);
    } else {
      EXPECT_FALSE(decoded.ok());
    }
  }
}

RankResponse TruncatedResponse() {
  RankResponse response;
  response.truncated = true;
  response.top = {{7, 0.5, true}, {3, 0.25, true}, {11, 0.125, false}};
  response.uncertainty_gap = 3e-4;
  response.method = SolverMethod::kForwardPush;
  response.pushes = 4200;
  response.converged = true;
  return response;
}

TEST(NetWireTopKTest, TruncatedResponseRoundTrips) {
  const RankResponse response = TruncatedResponse();
  auto decoded = DecodeRankResponse(EncodeRankResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().truncated);
  EXPECT_TRUE(decoded.value().scores.empty());
  ASSERT_EQ(decoded.value().top.size(), response.top.size());
  for (size_t i = 0; i < response.top.size(); ++i) {
    EXPECT_EQ(decoded.value().top[i], response.top[i]) << "entry " << i;
  }
  EXPECT_EQ(decoded.value().uncertainty_gap, response.uncertainty_gap);
  EXPECT_EQ(decoded.value().pushes, response.pushes);

  // An empty truncated set (k-query against an empty graph) still rides
  // the flag bit and round-trips.
  RankResponse empty;
  empty.truncated = true;
  auto empty_decoded = DecodeRankResponse(EncodeRankResponse(empty));
  ASSERT_TRUE(empty_decoded.ok());
  EXPECT_TRUE(empty_decoded.value().truncated);
  EXPECT_TRUE(empty_decoded.value().top.empty());
}

TEST(NetWireTopKTest, ExactResponseIsByteIdenticalToOldFormat) {
  RankResponse response;
  response.scores = {0.5, 0.5};
  response.converged = true;
  const std::vector<uint8_t> payload = EncodeRankResponse(response);
  // flags is the final u32 of the pre-top-k layout; bit 5 must be clear
  // and no truncated section may follow.
  const size_t flags_at = payload.size() - 4;
  EXPECT_EQ(payload[flags_at] & 0x20, 0);
  auto decoded = DecodeRankResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().truncated);
  EXPECT_TRUE(decoded.value().top.empty());
  EXPECT_EQ(decoded.value().uncertainty_gap, 0.0);
}

TEST(NetWireTopKTest, TruncatedResponseRejectsEveryTruncation) {
  const std::vector<uint8_t> payload =
      EncodeRankResponse(TruncatedResponse());
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len));
    EXPECT_FALSE(DecodeRankResponse({payload.data(), len}).ok());
  }
}

TEST(NetWireTopKTest, TruncatedResponseRejectsTrailingGarbage) {
  std::vector<uint8_t> payload = EncodeRankResponse(TruncatedResponse());
  payload.push_back(0);
  EXPECT_FALSE(DecodeRankResponse(payload).ok());
}

TEST(NetWireTopKTest, TruncatedResponseRejectsLyingEntryCount) {
  std::vector<uint8_t> payload = EncodeRankResponse(TruncatedResponse());
  // The entry count is the u64 right after the flags word: scores count
  // (8, zero scores) + method(4) + iterations(4) + pushes(8) +
  // residual(8) + flags(4) = offset 36.
  const size_t count_at = 36;
  for (int b = 0; b < 8; ++b) payload[count_at + b] = 0xff;
  EXPECT_FALSE(DecodeRankResponse(payload).ok());
}

TEST(NetWireTopKTest, TruncatedResponseRejectsBadCertifiedByte) {
  std::vector<uint8_t> payload = EncodeRankResponse(TruncatedResponse());
  // First entry's certified byte: entries start at offset 44 (count at
  // 36 + 8), each entry is node(4) + score(8) + certified(1).
  const size_t certified_at = 44 + 4 + 8;
  ASSERT_EQ(payload[certified_at], 1);
  payload[certified_at] = 2;
  auto decoded = DecodeRankResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("certified"), std::string::npos);
}

TEST(NetWireTopKTest, ResponseRejectsUnknownFlagBits) {
  std::vector<uint8_t> payload = EncodeRankResponse(RankResponse{});
  const size_t flags_at = payload.size() - 4;
  payload[flags_at] |= 0x40;  // bit 6: above the known mask
  EXPECT_FALSE(DecodeRankResponse(payload).ok());
}

TEST(NetWireTopKTest, RandomCorruptionNeverCrashesTopKDecoders) {
  // The corruption fuzz of NetWireTest, re-aimed at payloads that carry
  // the optional field and the flag-gated section.
  Rng rng(20260809);
  WireRankRequest wire;
  wire.request.seeds = {5, 10};
  wire.request.top_k = 25;
  const std::vector<uint8_t> request_payload = EncodeRankRequest(wire);
  const std::vector<uint8_t> response_payload =
      EncodeRankResponse(TruncatedResponse());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> corrupted =
        (trial % 2 == 0) ? request_payload : response_payload;
    const int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Next() % corrupted.size()] ^=
          static_cast<uint8_t>(1 + rng.Next() % 255);
    }
    if (trial % 2 == 0) {
      (void)DecodeRankRequest(corrupted);
    } else {
      (void)DecodeRankResponse(corrupted);
    }
  }
}

TEST(NetWireTest, RandomCorruptionNeverCrashesDecoders) {
  // Fuzz: flip random bytes in valid payloads; decoders must either
  // reject or produce a value, never crash or over-read (ASan-observable
  // if they did).
  Rng rng(20260808);
  WireRankRequest wire;
  wire.deadline_ms = 99;
  wire.request.seeds = {5, 10, 15};
  wire.request.warm_start_tag = "tag";
  const std::vector<uint8_t> request_payload = EncodeRankRequest(wire);
  RankResponse response;
  response.scores = {0.1, 0.2, 0.3, 0.4};
  const std::vector<uint8_t> response_payload = EncodeRankResponse(response);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> corrupted =
        (trial % 2 == 0) ? request_payload : response_payload;
    const int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Next() % corrupted.size()] ^=
          static_cast<uint8_t>(1 + rng.Next() % 255);
    }
    if (trial % 2 == 0) {
      (void)DecodeRankRequest(corrupted);
    } else {
      (void)DecodeRankResponse(corrupted);
    }
  }
}

}  // namespace
}  // namespace d2pr
