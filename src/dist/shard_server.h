// ShardServer: socket hosting for one ShardWorker — the listening side
// a `d2pr_server --shard-role` process runs and a SocketShardChannel
// connects to.
//
// Deliberately simpler than net/RpcServer: shard traffic is strictly
// call/response from a single coordinator, so each connection gets one
// thread that reads a frame, hands it to the worker, and writes the
// reply — no write queue, no completion fan-out, no admission control.
// Multiple concurrent connections are accepted (that is how a second
// coordinator's duplicate-claim handshake gets its AlreadyExists), but
// only the claiming session can drive solves.
//
// Error discipline mirrors the front door: framing violations (bad
// magic/version/type, oversize length, truncation) close the connection
// and count as protocol errors; a well-formed frame the worker rejects
// travels back as a kStatus reply. One deliberate exception — a kStatus
// reply to a HANDSHAKE closes the connection after the write: a peer
// whose identity declaration was rejected has nothing further to say on
// this stream, and the close frees the shard for a correctly-configured
// coordinator without touching any other connection.

#ifndef D2PR_DIST_SHARD_SERVER_H_
#define D2PR_DIST_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "dist/shard_worker.h"
#include "net/socket.h"

namespace d2pr {

/// \brief ShardServer construction knobs.
struct ShardServerOptions {
  /// TCP port on 127.0.0.1; 0 (default) binds an ephemeral port,
  /// reported by port() after Start().
  uint16_t port = 0;
};

/// \brief Cumulative server counters (atomic; read individually exact).
struct ShardServerStats {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> frames_handled{0};  ///< Replies written.
  /// Framing violations and unanswerable frames (each closed its
  /// connection).
  std::atomic<int64_t> protocol_errors{0};
  /// Handshakes the worker rejected (connection closed after the
  /// kStatus reply).
  std::atomic<int64_t> handshake_rejects{0};
};

/// \brief Accept loop + one thread per connection over one ShardWorker.
class ShardServer {
 public:
  /// `worker` must outlive the server.
  ShardServer(ShardWorker& worker, const ShardServerOptions& options = {});

  /// Stops and joins everything (see Stop()).
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds, listens, and starts the accept loop. IoError when the port
  /// cannot be bound; FailedPrecondition when already started.
  Status Start();

  /// Stops accepting, tears down every connection, and joins all
  /// threads. Idempotent.
  void Stop();

  /// The bound port; valid after a successful Start().
  uint16_t port() const { return port_; }

  const ShardServerStats& stats() const { return stats_; }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<Connection>& connection,
                       uint64_t session_id);

  ShardWorker& worker_;
  ShardServerOptions options_;
  ShardServerStats stats_;

  ListenSocket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_session_id_{1};

  std::mutex connections_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace d2pr

#endif  // D2PR_DIST_SHARD_SERVER_H_
