#include "core/gauss_seidel.h"

#include <cmath>

#include "common/string_util.h"
#include "core/teleport.h"
#include "linalg/vec_ops.h"

namespace d2pr {

Result<PagerankResult> SolvePagerankGaussSeidel(
    const CsrGraph& graph, const TransitionMatrix& transition,
    std::span<const double> teleport, const PagerankOptions& options) {
  D2PR_RETURN_NOT_OK(ValidatePagerankOptions(options));
  const NodeId n = graph.num_nodes();
  if (n != transition.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("graph has ", n, " nodes but transition matrix has ",
               transition.num_nodes()));
  }
  D2PR_RETURN_NOT_OK(ValidateTeleportVector(teleport, n));

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Gauss-Seidel needs incoming arcs per node: precompute the transpose
  // once, with probabilities carried over to the transposed arc order.
  const CsrGraph reverse = graph.Transpose();
  std::vector<double> reverse_probs(
      static_cast<size_t>(reverse.num_arcs()));
  {
    // Walk forward arcs and scatter into transpose slots in the same
    // order Transpose() emitted them (ascending source per target row).
    std::vector<EdgeIndex> cursor(static_cast<size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      cursor[static_cast<size_t>(v)] = reverse.ArcBegin(v);
    }
    const auto targets = graph.targets();
    const auto probs = transition.probs();
    for (NodeId src = 0; src < n; ++src) {
      const EdgeIndex begin = graph.ArcBegin(src);
      const EdgeIndex end = begin + graph.OutDegree(src);
      for (EdgeIndex e = begin; e < end; ++e) {
        const NodeId dst = targets[static_cast<size_t>(e)];
        reverse_probs[static_cast<size_t>(
            cursor[static_cast<size_t>(dst)]++)] =
            probs[static_cast<size_t>(e)];
      }
    }
  }
  const std::vector<NodeId> dangling = transition.DanglingNodes();

  std::vector<double> x(teleport.begin(), teleport.end());
  std::vector<double> previous(x);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Dangling mass from the current iterate (lagged within the sweep).
    double dangling_mass = 0.0;
    for (NodeId v : dangling) dangling_mass += x[static_cast<size_t>(v)];

    for (NodeId v = 0; v < n; ++v) {
      double incoming = 0.0;
      const EdgeIndex begin = reverse.ArcBegin(v);
      const EdgeIndex end = begin + reverse.OutDegree(v);
      const auto sources = reverse.targets();
      for (EdgeIndex e = begin; e < end; ++e) {
        incoming += reverse_probs[static_cast<size_t>(e)] *
                    x[static_cast<size_t>(sources[static_cast<size_t>(e)])];
      }
      double value = options.alpha * incoming +
                     (1.0 - options.alpha) * teleport[static_cast<size_t>(v)];
      switch (options.dangling) {
        case DanglingPolicy::kTeleport:
          value += options.alpha * dangling_mass *
                   teleport[static_cast<size_t>(v)];
          break;
        case DanglingPolicy::kSelfLoop:
          if (transition.IsDangling(v)) {
            // x_v = alpha*x_v + rest  =>  x_v = rest / (1 - alpha).
            value /= (1.0 - options.alpha);
          }
          break;
        case DanglingPolicy::kRenormalize:
          break;
      }
      x[static_cast<size_t>(v)] = value;
    }
    NormalizeL1(x);

    result.iterations = iter;
    result.residual = DiffL1(x, previous);
    previous = x;
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(x);
  return result;
}

Result<PagerankResult> SolvePagerankGaussSeidel(
    const CsrGraph& graph, const TransitionMatrix& transition,
    const PagerankOptions& options) {
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  return SolvePagerankGaussSeidel(graph, transition, teleport, options);
}

}  // namespace d2pr
