// GraphBuilder: accumulates edges (COO) and produces an immutable CsrGraph.

#ifndef D2PR_GRAPH_GRAPH_BUILDER_H_
#define D2PR_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace d2pr {

/// \brief How Build() treats arcs added more than once between the same
/// ordered node pair.
enum class DuplicatePolicy {
  kSum,        ///< Merge, summing weights (projection-friendly default).
  kKeepFirst,  ///< Merge, keeping the first weight seen.
  kError,      ///< Fail the build with InvalidArgument.
};

/// \brief Mutable edge accumulator.
///
/// For undirected graphs AddEdge(u, v) registers both arcs; a self-loop
/// registers one arc. Node ids outside [0, num_nodes) are rejected at
/// AddEdge time via Status.
class GraphBuilder {
 public:
  /// \param num_nodes Fixed node-id space of the graph being built.
  /// \param kind Directed or undirected.
  /// \param weighted When false, Build() produces an unweighted graph and
  ///        all added weights must equal 1.0.
  GraphBuilder(NodeId num_nodes, GraphKind kind, bool weighted = false);

  /// Adds one edge (undirected) or arc (directed). Returns InvalidArgument
  /// for out-of-range ids, or non-unit weight on an unweighted builder.
  Status AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Number of AddEdge calls accepted so far.
  int64_t num_added() const { return static_cast<int64_t>(srcs_.size()); }

  NodeId num_nodes() const { return num_nodes_; }

  /// Sorts, deduplicates per `policy`, and freezes into a CsrGraph.
  /// The builder is left empty and reusable afterwards.
  Result<CsrGraph> Build(DuplicatePolicy policy = DuplicatePolicy::kSum);

  /// Process-wide count of successful Build() calls — a test seam
  /// mirroring TransitionMatrix::BuildCount(): the cut-file suites prove
  /// a --shard-file worker never constructs a whole CsrGraph by
  /// asserting this counter stays put across its load and solve.
  static uint64_t BuildCount();

 private:
  NodeId num_nodes_;
  GraphKind kind_;
  bool weighted_;
  // COO triplets; for undirected edges both directions are stored.
  std::vector<NodeId> srcs_;
  std::vector<NodeId> dsts_;
  std::vector<double> weights_;
};

}  // namespace d2pr

#endif  // D2PR_GRAPH_GRAPH_BUILDER_H_
