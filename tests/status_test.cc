#include "common/status.h"

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad p");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad p");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IoError("a"));
  EXPECT_NE(Status::OK(), Status::Internal(""));
}

TEST(StatusTest, CopyingSharesMessageSafely) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_EQ(original.message(), "boom");
  EXPECT_EQ(copy, original);
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailingOperation() { return Status::IoError("disk"); }

Status Caller() {
  D2PR_RETURN_NOT_OK(FailingOperation());
  return Status::OK();  // unreachable
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Caller().code(), StatusCode::kIoError);
}

Status SucceedingCaller() {
  D2PR_RETURN_NOT_OK(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnNotOkMacroFallsThroughOnOk) {
  EXPECT_EQ(SucceedingCaller().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace d2pr
