#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace d2pr {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrCat(what, ": ", std::strerror(errno)));
}

Status MakeAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("not a numeric IPv4 address: '", host, "'"));
  }
  return Status::OK();
}

}  // namespace

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  D2PR_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  // Frames are written whole and latency is the benchmark's subject;
  // Nagle coalescing only adds delay to small request frames.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("connect");
  }
  return socket;
}

Status Socket::SendAll(const void* data, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("send on invalid socket");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a process-killing
    // SIGPIPE.
    const ssize_t sent = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    if (sent == 0) return Status::IoError("send: connection closed");
    p += sent;
    len -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvExact(void* data, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  if (fd_ < 0) return Status::FailedPrecondition("recv on invalid socket");
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expiry (SetRecvTimeout). Bytes already read stay
        // read — the caller decides whether the stream is resumable.
        return Status::DeadlineExceeded(
            StrCat("recv: timed out (", got, " of ", len, " bytes)"));
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IoError(
          got == 0 ? "recv: connection closed"
                   : StrCat("recv: connection closed mid-read (", got, " of ",
                            len, " bytes)"));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::SetRecvTimeout(int64_t ms) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("setsockopt on invalid socket");
  }
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ListenSocket> ListenSocket::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ListenSocket listener(fd, port);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(fd, 128) != 0) return Errno("listen");
  if (port == 0) {
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
        0) {
      return Errno("getsockname");
    }
    listener.port_ = ntohs(addr.sin_port);
  }
  return listener;
}

Result<Socket> ListenSocket::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("accept on invalid socket");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace d2pr
