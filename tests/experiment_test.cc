#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sweeps.h"
#include "datagen/classic_generators.h"
#include "datagen/copula.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace d2pr {
namespace {

TEST(CorrelationPSweepTest, TracksTargetAcrossGrid) {
  Rng rng(1);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> significance = DegreesAsDoubles(*graph);
  auto series = CorrelationPSweep(*graph, significance, {-1.0, 0.0, 2.0},
                                  BenchOptions());
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  // Significance == degree: boosting must beat penalizing.
  EXPECT_GT((*series)[0].correlation, (*series)[2].correlation);
  for (const auto& point : *series) {
    EXPECT_TRUE(point.converged);
    EXPECT_GT(point.iterations, 0);
  }
}

TEST(CorrelationPSweepTest, RejectsSizeMismatch) {
  Rng rng(2);
  auto graph = ErdosRenyi(50, 100, &rng);
  ASSERT_TRUE(graph.ok());
  std::vector<double> wrong(10, 1.0);
  EXPECT_FALSE(CorrelationPSweep(*graph, wrong, {0.0}).ok());
}

TEST(CorrelationAlphaPSweepTest, ProducesFullSurface) {
  Rng rng(3);
  auto graph = BarabasiAlbert(150, 2, &rng);
  ASSERT_TRUE(graph.ok());
  Rng noise(4);
  auto significance =
      SpearmanCoupledVector(DegreesAsDoubles(*graph), 0.3, &noise);
  ASSERT_TRUE(significance.ok());
  auto surface = CorrelationAlphaPSweep(*graph, *significance, {0.5, 0.85},
                                        {-1.0, 0.0, 1.0}, BenchOptions());
  ASSERT_TRUE(surface.ok());
  EXPECT_EQ(surface->outer_values, (std::vector<double>{0.5, 0.85}));
  ASSERT_EQ(surface->series.size(), 2u);
  for (const auto& series : surface->series) {
    EXPECT_EQ(series.size(), 3u);
  }
}

TEST(CorrelationBetaPSweepTest, RequiresWeightedGraph) {
  Rng rng(5);
  auto graph = ErdosRenyi(50, 150, &rng);
  ASSERT_TRUE(graph.ok());
  std::vector<double> significance(50, 1.0);
  EXPECT_FALSE(
      CorrelationBetaPSweep(*graph, significance, {0.0, 1.0}, {0.0}).ok());
}

TEST(CorrelationBetaPSweepTest, WorksOnWeightedGraph) {
  GraphBuilder builder(40, GraphKind::kUndirected, /*weighted=*/true);
  Rng rng(6);
  for (NodeId v = 0; v + 1 < 40; ++v) {
    ASSERT_TRUE(
        builder.AddEdge(v, v + 1, 1.0 + rng.Uniform() * 4.0).ok());
  }
  for (int extra = 0; extra < 40; ++extra) {
    const NodeId u = static_cast<NodeId>(rng.Below(40));
    const NodeId v = static_cast<NodeId>(rng.Below(40));
    if (u != v) {
      ASSERT_TRUE(builder.AddEdge(u, v, 1.0 + rng.Uniform()).ok());
    }
  }
  auto graph = builder.Build(DuplicatePolicy::kKeepFirst);
  ASSERT_TRUE(graph.ok());
  std::vector<double> significance(40);
  for (double& s : significance) s = rng.Uniform();
  auto surface = CorrelationBetaPSweep(*graph, significance,
                                       PaperBetaGrid(), {-1.0, 0.0, 1.0});
  ASSERT_TRUE(surface.ok());
  EXPECT_EQ(surface->series.size(), 5u);
}

TEST(BestPointTest, PicksMaxAndPrefersSmallestAbsP) {
  std::vector<CorrelationPoint> series;
  for (double p : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    CorrelationPoint point;
    point.p = p;
    point.correlation = (p == -1.0 || p == 1.0) ? 0.5 : 0.1;
    series.push_back(point);
  }
  // Tie between p = -1 and p = 1: the earlier (-1) wins since |p| equal,
  // and strict improvement is required to replace.
  const CorrelationPoint best = BestPoint(series);
  EXPECT_DOUBLE_EQ(best.correlation, 0.5);
  EXPECT_DOUBLE_EQ(best.p, -1.0);
}

TEST(BestPointTest, PrefersLessIntrusiveP) {
  std::vector<CorrelationPoint> series(2);
  series[0].p = 3.0;
  series[0].correlation = 0.4;
  series[1].p = 0.5;
  series[1].correlation = 0.4;
  EXPECT_DOUBLE_EQ(BestPoint(series).p, 0.5);
}

TEST(ConventionalPointTest, FindsPZero) {
  std::vector<CorrelationPoint> series(3);
  series[0].p = -1.0;
  series[1].p = 0.0;
  series[1].correlation = 0.25;
  series[2].p = 1.0;
  EXPECT_DOUBLE_EQ(ConventionalPoint(series).correlation, 0.25);
}

TEST(ConventionalPointDeathTest, MissingPZeroAborts) {
  std::vector<CorrelationPoint> series(1);
  series[0].p = 1.0;
  EXPECT_DEATH(ConventionalPoint(series), "CHECK failed");
}

TEST(BenchOptionsTest, MatchesPaperDefaults) {
  const D2prOptions options = BenchOptions();
  EXPECT_DOUBLE_EQ(options.alpha, 0.85);
  EXPECT_DOUBLE_EQ(options.beta, 0.0);
}

}  // namespace
}  // namespace d2pr
