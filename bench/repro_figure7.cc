// Figure 7: relationship between alpha and p for application Group B
// (conventional PageRank ideal). Paper shape: larger alpha gives the best
// correlation near p = 0; at extreme |p| the ordering flips and smaller
// alpha becomes preferable (the distorted walk is worse than random
// jumps).

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupAlphaFigure(
      d2pr::ApplicationGroup::kConventionalIdeal,
      "Figure 7: alpha x p interplay (Group B)",
      "Figure 7(a)-(b): unweighted graphs, alpha in {0.5, 0.7, 0.85, 0.9}",
      "figure7");
}
