#include "stats/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace d2pr {

namespace {

// Indices 0..n-1 sorted so scores come out in rank order (best first for
// descending), ties broken by index for determinism.
std::vector<size_t> SortedIndices(std::span<const double> scores,
                                  RankOrder order) {
  std::vector<size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) {
      return order == RankOrder::kDescending ? scores[a] > scores[b]
                                             : scores[a] < scores[b];
    }
    return a < b;
  });
  return idx;
}

}  // namespace

std::vector<double> AverageRanks(std::span<const double> scores,
                                 RankOrder order) {
  const std::vector<size_t> idx = SortedIndices(scores, order);
  std::vector<double> ranks(scores.size());
  size_t i = 0;
  while (i < idx.size()) {
    size_t j = i;
    while (j + 1 < idx.size() && scores[idx[j + 1]] == scores[idx[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

std::vector<int64_t> OrdinalRanks(std::span<const double> scores,
                                  RankOrder order) {
  const std::vector<size_t> idx = SortedIndices(scores, order);
  std::vector<int64_t> ranks(scores.size());
  for (size_t pos = 0; pos < idx.size(); ++pos) {
    ranks[idx[pos]] = static_cast<int64_t>(pos) + 1;
  }
  return ranks;
}

std::vector<NodeId> TopK(std::span<const double> scores, size_t k) {
  k = std::min(k, scores.size());
  const std::vector<size_t> idx = SortedIndices(scores, RankOrder::kDescending);
  std::vector<NodeId> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(static_cast<NodeId>(idx[i]));
  return out;
}

std::vector<NodeId> BottomK(std::span<const double> scores, size_t k) {
  k = std::min(k, scores.size());
  const std::vector<size_t> idx = SortedIndices(scores, RankOrder::kAscending);
  std::vector<NodeId> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(static_cast<NodeId>(idx[i]));
  return out;
}

}  // namespace d2pr
