#include "datagen/bipartite_world.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stats/correlation.h"

namespace d2pr {
namespace {

BipartiteWorldConfig SmallConfig() {
  BipartiteWorldConfig config;
  config.num_members = 400;
  config.num_venues = 200;
  config.venue_size_min = 2;
  config.venue_size_max = 10;
  config.budget_mean = 8.0;
  config.seed = 99;
  return config;
}

TEST(BipartiteWorldTest, StructuralInvariants) {
  auto world = GenerateBipartiteWorld(SmallConfig());
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  EXPECT_EQ(world->member_quality.size(), 400u);
  EXPECT_EQ(world->venue_quality.size(), 200u);
  EXPECT_EQ(world->venue_members.size(), 200u);
  EXPECT_EQ(world->member_venues.size(), 400u);
  // Qualities lie in (0, 1).
  for (double q : world->member_quality) {
    EXPECT_GT(q, 0.0);
    EXPECT_LT(q, 1.0);
  }
  // Memberships are sorted, distinct, in-range, and the two views agree.
  int64_t from_venues = 0;
  for (NodeId r = 0; r < 200; ++r) {
    const auto& members = world->venue_members[static_cast<size_t>(r)];
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    EXPECT_TRUE(std::adjacent_find(members.begin(), members.end()) ==
                members.end());
    from_venues += static_cast<int64_t>(members.size());
    for (NodeId i : members) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, 400);
      const auto& venues = world->member_venues[static_cast<size_t>(i)];
      EXPECT_TRUE(std::binary_search(venues.begin(), venues.end(), r));
    }
  }
  EXPECT_EQ(from_venues, world->TotalMemberships());
}

TEST(BipartiteWorldTest, DeterministicInSeed) {
  auto a = GenerateBipartiteWorld(SmallConfig());
  auto b = GenerateBipartiteWorld(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->venue_members, b->venue_members);
  EXPECT_EQ(a->member_quality, b->member_quality);
}

TEST(BipartiteWorldTest, DifferentSeedsDiffer) {
  BipartiteWorldConfig other = SmallConfig();
  other.seed = 100;
  auto a = GenerateBipartiteWorld(SmallConfig());
  auto b = GenerateBipartiteWorld(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->venue_members, b->venue_members);
}

TEST(BipartiteWorldTest, BudgetsNeverOverspent) {
  BipartiteWorldConfig config = SmallConfig();
  config.cost_quality_slope = 2.0;
  auto world = GenerateBipartiteWorld(config);
  ASSERT_TRUE(world.ok());
  for (size_t i = 0; i < world->member_budget.size(); ++i) {
    EXPECT_LE(world->member_spent[i], world->member_budget[i] + 1e-9);
  }
}

TEST(BipartiteWorldTest, VenueSizesWithinConfiguredRange) {
  auto world = GenerateBipartiteWorld(SmallConfig());
  ASSERT_TRUE(world.ok());
  for (const auto& members : world->venue_members) {
    EXPECT_LE(members.size(), 10u);
  }
}

TEST(BipartiteWorldTest, CostSlopeCreatesNegativeDegreeQualityCoupling) {
  // The paper's §1.2.1 mechanism: with expensive high-quality venues,
  // high-quality (assortative) members join fewer venues.
  // High venue demand relative to member budgets, so the budget binds.
  BipartiteWorldConfig config = SmallConfig();
  config.num_members = 600;
  config.num_venues = 1500;
  config.affinity = 5.0;
  config.cost_base = 1.0;
  config.cost_quality_slope = 3.5;
  config.budget_mean = 10.0;
  config.budget_sigma = 0.1;
  auto world = GenerateBipartiteWorld(config);
  ASSERT_TRUE(world.ok());
  std::vector<double> degrees(600);
  for (size_t i = 0; i < 600; ++i) {
    degrees[i] = static_cast<double>(world->member_venues[i].size());
  }
  EXPECT_LT(SpearmanCorrelation(degrees, world->member_quality), -0.25);
}

TEST(BipartiteWorldTest, NoCostSlopeMeansWeakCoupling) {
  BipartiteWorldConfig config = SmallConfig();
  config.num_members = 1500;
  config.num_venues = 800;
  config.cost_quality_slope = 0.0;
  config.budget_sigma = 0.2;
  auto world = GenerateBipartiteWorld(config);
  ASSERT_TRUE(world.ok());
  std::vector<double> degrees(1500);
  for (size_t i = 0; i < 1500; ++i) {
    degrees[i] = static_cast<double>(world->member_venues[i].size());
  }
  EXPECT_NEAR(SpearmanCorrelation(degrees, world->member_quality), 0.0,
              0.15);
}

TEST(BipartiteWorldTest, AssortativityMatchesQualities) {
  // With strong affinity, a member's venues should have quality close to
  // the member's own.
  BipartiteWorldConfig config = SmallConfig();
  config.num_members = 1000;
  config.num_venues = 600;
  config.affinity = 6.0;
  auto world = GenerateBipartiteWorld(config);
  ASSERT_TRUE(world.ok());
  std::vector<double> member_q, venue_avg_q;
  for (size_t i = 0; i < 1000; ++i) {
    const auto& venues = world->member_venues[i];
    if (venues.size() < 2) continue;
    double total = 0.0;
    for (NodeId r : venues) {
      total += world->venue_quality[static_cast<size_t>(r)];
    }
    member_q.push_back(world->member_quality[i]);
    venue_avg_q.push_back(total / static_cast<double>(venues.size()));
  }
  EXPECT_GT(SpearmanCorrelation(member_q, venue_avg_q), 0.5);
}

TEST(BipartiteWorldTest, ValidationRejectsBadConfigs) {
  BipartiteWorldConfig config = SmallConfig();
  config.num_members = 0;
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());

  config = SmallConfig();
  config.venue_size_min = 5;
  config.venue_size_max = 2;
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());

  config = SmallConfig();
  config.quality_alpha = 0.0;
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());

  config = SmallConfig();
  config.cost_base = 0.0;
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());

  config = SmallConfig();
  config.budget_mean = 0.5;  // below cost_base = 1
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());

  config = SmallConfig();
  config.affinity = -1.0;
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());

  config = SmallConfig();
  config.cost_quality_slope = -2.0;  // cost can go non-positive
  EXPECT_FALSE(GenerateBipartiteWorld(config).ok());
}

}  // namespace
}  // namespace d2pr
