#include "topk/degree_bound.h"

#include <algorithm>
#include <numeric>

namespace d2pr {

DegreeBoundIndex DegreeBoundIndex::Build(const CsrGraph& graph,
                                         const TransitionMatrix& transition) {
  const NodeId n = graph.num_nodes();
  DegreeBoundIndex index;
  index.max_in_prob_.assign(static_cast<size_t>(n), 0.0);

  const auto targets = graph.targets();
  const auto probs = transition.probs();
  for (NodeId u = 0; u < n; ++u) {
    if (transition.IsDangling(u)) {
      index.has_dangling_ = true;
      continue;
    }
    const EdgeIndex begin = graph.ArcBegin(u);
    const EdgeIndex end = begin + graph.OutDegree(u);
    for (EdgeIndex e = begin; e < end; ++e) {
      double& bound =
          index.max_in_prob_[static_cast<size_t>(targets[static_cast<size_t>(e)])];
      bound = std::max(bound, probs[static_cast<size_t>(e)]);
    }
  }

  index.order_.resize(static_cast<size_t>(n));
  std::iota(index.order_.begin(), index.order_.end(), NodeId{0});
  std::sort(index.order_.begin(), index.order_.end(),
            [&](NodeId a, NodeId b) {
              const double ba = index.max_in_prob_[static_cast<size_t>(a)];
              const double bb = index.max_in_prob_[static_cast<size_t>(b)];
              if (ba != bb) return ba > bb;
              return a < b;
            });
  return index;
}

}  // namespace d2pr
