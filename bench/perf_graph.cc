// Microbenchmarks for graph construction and structural kernels.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace d2pr {
namespace {

void BM_GraphBuild(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  // Pre-generate the edge list so only builder work is measured.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int64_t i = 0; i < 8 * state.range(0); ++i) {
    edges.emplace_back(static_cast<NodeId>(rng.Below(n)),
                       static_cast<NodeId>(rng.Below(n)));
  }
  for (auto _ : state) {
    GraphBuilder builder(n, GraphKind::kUndirected);
    for (auto [u, v] : edges) {
      benchmark::DoNotOptimize(builder.AddEdge(u, v).ok());
    }
    auto graph = builder.Build();
    benchmark::DoNotOptimize(graph->num_arcs());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(10000)->Arg(100000);

void BM_Transpose(benchmark::State& state) {
  Rng rng(2);
  auto graph = BarabasiAlbert(static_cast<NodeId>(state.range(0)), 4, &rng);
  D2PR_CHECK(graph.ok());
  for (auto _ : state) {
    CsrGraph transpose = graph->Transpose();
    benchmark::DoNotOptimize(transpose.num_arcs());
  }
  state.SetItemsProcessed(state.iterations() * graph->num_arcs());
}
BENCHMARK(BM_Transpose)->Arg(10000)->Arg(100000);

void BM_GraphStats(benchmark::State& state) {
  Rng rng(3);
  auto graph = BarabasiAlbert(static_cast<NodeId>(state.range(0)), 4, &rng);
  D2PR_CHECK(graph.ok());
  for (auto _ : state) {
    GraphStats stats = ComputeGraphStats(*graph);
    benchmark::DoNotOptimize(stats.median_neighbor_degree_stddev);
  }
}
BENCHMARK(BM_GraphStats)->Arg(10000)->Arg(50000);

void BM_Projection(benchmark::State& state) {
  BipartiteWorldConfig config;
  config.num_members = static_cast<NodeId>(state.range(0));
  config.num_venues = static_cast<NodeId>(state.range(0) / 2);
  config.venue_size_min = 2;
  config.venue_size_max = 20;
  config.budget_mean = 10.0;
  config.seed = 4;
  auto world = GenerateBipartiteWorld(config);
  D2PR_CHECK(world.ok());
  ProjectionConfig projection;
  projection.weighted = true;
  for (auto _ : state) {
    auto graph = ProjectMembers(*world, projection);
    benchmark::DoNotOptimize(graph->num_arcs());
  }
}
BENCHMARK(BM_Projection)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
