// Samplers for the skewed distributions the synthetic worlds need.

#ifndef D2PR_DATAGEN_DISTRIBUTIONS_H_
#define D2PR_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace d2pr {

/// \brief Bounded Zipf sampler: P(k) ∝ k^-s for k in [1, n].
///
/// Uses inverse-CDF over a precomputed table; O(log n) per draw after O(n)
/// setup. Deterministic given the Rng stream.
class ZipfSampler {
 public:
  /// \param n Largest value (inclusive). \param s Exponent (s >= 0).
  ZipfSampler(int64_t n, double s);

  /// Draws a value in [1, n].
  int64_t Sample(Rng* rng) const;

  /// Expected value of the distribution.
  double Mean() const { return mean_; }

 private:
  std::vector<double> cdf_;
  double mean_;
};

/// \brief Draws `count` values from Zipf(n, s) shifted by `min_value - 1`
/// (values lie in [min_value, min_value + n - 1]).
std::vector<int64_t> SampleZipfMany(int64_t count, int64_t n, double s,
                                    int64_t min_value, Rng* rng);

/// \brief Weighted sampling of `k` distinct indices from weights[0..n)
/// (probability ∝ weight). Weights must be non-negative with at least k
/// positive entries; O(n + k log n) via exponential races.
std::vector<int32_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int32_t k, Rng* rng);

/// \brief Standard normal quantile (Acklam's rational approximation,
/// |error| < 1.15e-9). Input must lie in (0, 1).
double NormalQuantile(double prob);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_DISTRIBUTIONS_H_
