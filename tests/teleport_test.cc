#include "core/teleport.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

TEST(UniformTeleportTest, SumsToOne) {
  const std::vector<double> t = UniformTeleport(8);
  ASSERT_EQ(t.size(), 8u);
  EXPECT_NEAR(Sum(t), 1.0, 1e-12);
  for (double v : t) EXPECT_DOUBLE_EQ(v, 0.125);
}

TEST(SeededTeleportTest, UniformOverSeeds) {
  auto t = SeededTeleport(5, std::vector<NodeId>{1, 3});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)[0], 0.0);
  EXPECT_DOUBLE_EQ((*t)[1], 0.5);
  EXPECT_DOUBLE_EQ((*t)[3], 0.5);
}

TEST(SeededTeleportTest, RejectsEmptyOutOfRangeAndDuplicates) {
  EXPECT_FALSE(SeededTeleport(5, std::vector<NodeId>{}).ok());
  EXPECT_FALSE(SeededTeleport(5, std::vector<NodeId>{5}).ok());
  EXPECT_FALSE(SeededTeleport(5, std::vector<NodeId>{-1}).ok());
  EXPECT_FALSE(SeededTeleport(5, std::vector<NodeId>{2, 2}).ok());
}

TEST(WeightedTeleportTest, NormalizesWeights) {
  auto t = WeightedTeleport(4, std::vector<NodeId>{0, 2},
                            std::vector<double>{1.0, 3.0});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)[0], 0.25);
  EXPECT_DOUBLE_EQ((*t)[2], 0.75);
}

TEST(WeightedTeleportTest, RejectsBadWeights) {
  EXPECT_FALSE(WeightedTeleport(4, std::vector<NodeId>{0},
                                std::vector<double>{0.0})
                   .ok());
  EXPECT_FALSE(WeightedTeleport(4, std::vector<NodeId>{0},
                                std::vector<double>{-1.0})
                   .ok());
  EXPECT_FALSE(WeightedTeleport(4, std::vector<NodeId>{0, 1},
                                std::vector<double>{1.0})
                   .ok());
}

TEST(DegreeProportionalTeleportTest, GammaMinusOneBoostsLowDegree) {
  // Star: hub degree 3, leaves degree 1.
  GraphBuilder builder(4, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> t = DegreeProportionalTeleport(*graph, -1.0);
  EXPECT_NEAR(Sum(t), 1.0, 1e-12);
  // Hub share 1/3 relative to each leaf's 1: hub = (1/3) / (1/3 + 3).
  EXPECT_NEAR(t[0], (1.0 / 3.0) / (1.0 / 3.0 + 3.0), 1e-12);
  EXPECT_GT(t[1], t[0]);
}

TEST(DegreeProportionalTeleportTest, GammaPlusOneBoostsHubs) {
  GraphBuilder builder(4, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> t = DegreeProportionalTeleport(*graph, 1.0);
  EXPECT_NEAR(t[0], 0.5, 1e-12);  // 3 / (3 + 1 + 1 + 1)
}

TEST(DegreeProportionalTeleportTest, GammaZeroIsUniform) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> t = DegreeProportionalTeleport(*graph, 0.0);
  for (double v : t) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(DegreeProportionalTeleportTest, IsolatedNodesGetMinimumShare) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());  // node 2 isolated
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> t = DegreeProportionalTeleport(*graph, -1.0);
  EXPECT_GT(t[2], 0.0);
  EXPECT_NEAR(Sum(t), 1.0, 1e-12);
}

TEST(DegreeProportionalTeleportTest, AllIsolatedFallsBackToUniform) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> t = DegreeProportionalTeleport(*graph, -1.0);
  for (double v : t) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace d2pr
