#include "graph/graph_metrics.h"

#include <algorithm>
#include <cmath>

#include "stats/correlation.h"

namespace d2pr {

namespace {

// Number of edges among the neighbors of v (sorted-list intersections).
int64_t NeighborEdgeCount(const CsrGraph& graph, NodeId v) {
  auto nbrs = graph.OutNeighbors(v);
  int64_t links = 0;
  for (NodeId u : nbrs) {
    if (u == v) continue;
    auto nu = graph.OutNeighbors(u);
    // Count w in nbrs ∩ nu with w > u to count each neighbor edge once.
    size_t a = 0, b = 0;
    while (a < nbrs.size() && b < nu.size()) {
      if (nbrs[a] == nu[b]) {
        if (nbrs[a] > u && nbrs[a] != v) ++links;
        ++a;
        ++b;
      } else if (nbrs[a] < nu[b]) {
        ++a;
      } else {
        ++b;
      }
    }
  }
  return links;
}

// Degree of v excluding a self-loop contribution.
int64_t SimpleDegree(const CsrGraph& graph, NodeId v) {
  int64_t degree = graph.OutDegree(v);
  if (graph.HasArc(v, v)) --degree;
  return degree;
}

}  // namespace

double LocalClusteringCoefficient(const CsrGraph& graph, NodeId v) {
  D2PR_CHECK(!graph.directed());
  const int64_t degree = SimpleDegree(graph, v);
  if (degree < 2) return 0.0;
  const int64_t links = NeighborEdgeCount(graph, v);
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(degree) * static_cast<double>(degree - 1));
}

double AverageClusteringCoefficient(const CsrGraph& graph) {
  D2PR_CHECK(!graph.directed());
  double total = 0.0;
  int64_t eligible = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (SimpleDegree(graph, v) >= 2) {
      total += LocalClusteringCoefficient(graph, v);
      ++eligible;
    }
  }
  return eligible == 0 ? 0.0 : total / static_cast<double>(eligible);
}

double GlobalTransitivity(const CsrGraph& graph) {
  D2PR_CHECK(!graph.directed());
  int64_t closed = 0;  // ordered neighbor pairs that are connected
  int64_t triples = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const int64_t degree = SimpleDegree(graph, v);
    if (degree < 2) continue;
    triples += degree * (degree - 1) / 2;
    closed += NeighborEdgeCount(graph, v);
  }
  if (triples == 0) return 0.0;
  // Each triangle contributes one closing edge at each of its 3 corners.
  return static_cast<double>(closed) / static_cast<double>(triples);
}

double DegreeAssortativity(const CsrGraph& graph) {
  // Collect per-arc endpoint degrees; for undirected graphs arcs appear in
  // both directions, which symmetrizes the correlation as required.
  std::vector<double> source_degree;
  std::vector<double> target_degree;
  source_degree.reserve(static_cast<size_t>(graph.num_arcs()));
  target_degree.reserve(static_cast<size_t>(graph.num_arcs()));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const double du = static_cast<double>(graph.OutDegree(u));
    for (NodeId v : graph.OutNeighbors(u)) {
      if (u == v) continue;
      source_degree.push_back(du);
      target_degree.push_back(static_cast<double>(graph.OutDegree(v)));
    }
  }
  if (source_degree.size() < 2) return 0.0;
  return PearsonCorrelation(source_degree, target_degree);
}

}  // namespace d2pr
