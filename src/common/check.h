// D2PR_CHECK: fatal assertions for programming errors (contract violations).
//
// Unlike Status (expected, recoverable failures), a failed check indicates a
// bug in the calling code; it prints a diagnostic and aborts. Checks are
// active in all build types: graph analytics bugs silently corrupt rankings,
// so we keep the guard rails in release builds too (the hot loops avoid
// per-element checks).

#ifndef D2PR_COMMON_CHECK_H_
#define D2PR_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace d2pr {
namespace internal {

/// \brief Accumulates a failure message and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace d2pr

#define D2PR_CHECK(condition)                                         \
  if (condition) {                                                    \
  } else /* NOLINT */                                                 \
    ::d2pr::internal::CheckFailureStream(#condition, __FILE__, __LINE__)

#define D2PR_CHECK_EQ(a, b) D2PR_CHECK((a) == (b))
#define D2PR_CHECK_NE(a, b) D2PR_CHECK((a) != (b))
#define D2PR_CHECK_LT(a, b) D2PR_CHECK((a) < (b))
#define D2PR_CHECK_LE(a, b) D2PR_CHECK((a) <= (b))
#define D2PR_CHECK_GT(a, b) D2PR_CHECK((a) > (b))
#define D2PR_CHECK_GE(a, b) D2PR_CHECK((a) >= (b))

#ifndef NDEBUG
#define D2PR_DCHECK(condition) D2PR_CHECK(condition)
#else
#define D2PR_DCHECK(condition) \
  if (true) {                  \
  } else /* NOLINT */          \
    ::d2pr::internal::CheckFailureStream(#condition, __FILE__, __LINE__)
#endif

#endif  // D2PR_COMMON_CHECK_H_
