// ScoreCache behavior: canonical request keys, TTL expiry on an
// injected clock, LFU eviction with insertion-order tie-breaks, and
// hit/miss/eviction accounting.

#include "serve/score_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace d2pr {
namespace {

using std::chrono::seconds;
using TimePoint = std::chrono::steady_clock::time_point;

RankResponse MakeResponse(double tag) {
  RankResponse response;
  response.scores = {tag, tag + 1.0, tag + 2.0};
  response.iterations = 7;
  response.converged = true;
  response.residual = 1e-11;
  return response;
}

/// A cache on a hand-cranked clock starting at the epoch.
struct CacheOnFakeClock {
  explicit CacheOnFakeClock(size_t capacity, seconds ttl)
      : now(std::make_shared<TimePoint>()),
        cache([&] {
          ScoreCacheOptions options;
          options.capacity = capacity;
          options.ttl = ttl;
          options.now = [now = now] { return *now; };
          return options;
        }()) {}

  void Advance(seconds by) { *now += by; }

  std::shared_ptr<TimePoint> now;
  ScoreCache cache;
};

TEST(ScoreCacheTest, KeyCanonicalizesIdenticalRequests) {
  RankRequest a;
  a.p = 0.5;
  a.seeds = {3, 17};
  RankRequest b = a;
  EXPECT_EQ(ScoreCache::KeyFor(a), ScoreCache::KeyFor(b));
  // The warm-start tag never reaches the key: tagged requests bypass the
  // cache entirely, so the tag must not fragment it for anyone else.
  b.warm_start_tag = "sweep";
  EXPECT_EQ(ScoreCache::KeyFor(a), ScoreCache::KeyFor(b));
}

TEST(ScoreCacheTest, KeySeparatesEveryResponseAffectingField) {
  const RankRequest base;
  const std::string base_key = ScoreCache::KeyFor(base);

  RankRequest changed = base;
  changed.p = 0.25;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.alpha = 0.9;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.tolerance = 1e-8;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.max_iterations = 50;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.method = SolverMethod::kGaussSeidel;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.dangling = DanglingPolicy::kRenormalize;
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.seeds = {5};
  EXPECT_NE(ScoreCache::KeyFor(changed), base_key);
  changed = base;
  changed.seeds = {5, 6};
  EXPECT_NE(ScoreCache::KeyFor(changed), ScoreCache::KeyFor([&] {
              RankRequest two = base;
              two.seeds = {56};
              return two;
            }()));
}

TEST(ScoreCacheTest, LookupReturnsInsertedResponse) {
  ScoreCache cache;
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", MakeResponse(4.0));
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scores, MakeResponse(4.0).scores);
  EXPECT_EQ(hit->iterations, 7);
  EXPECT_TRUE(hit->converged);

  const ScoreCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(ScoreCacheTest, TtlExpiresEntries) {
  CacheOnFakeClock fixture(8, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(9));
  EXPECT_TRUE(fixture.cache.Lookup("k").has_value());

  fixture.Advance(seconds(2));  // 11s since insert: past the 10s TTL
  EXPECT_FALSE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.size(), 0u);

  const ScoreCacheStats stats = fixture.cache.stats();
  EXPECT_EQ(stats.expirations, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ScoreCacheTest, ReinsertRestartsTtlWindow) {
  CacheOnFakeClock fixture(8, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(8));
  fixture.cache.Insert("k", MakeResponse(2.0));  // refresh
  fixture.Advance(seconds(8));                   // 16s after first insert
  auto hit = fixture.cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->scores.front(), 2.0);
}

TEST(ScoreCacheTest, ZeroTtlNeverExpires) {
  CacheOnFakeClock fixture(8, seconds(0));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(1000000));
  EXPECT_TRUE(fixture.cache.Lookup("k").has_value());
}

TEST(ScoreCacheTest, LfuEvictsLeastFrequentlyUsed) {
  ScoreCacheOptions options;
  options.capacity = 2;
  ScoreCache cache(options);
  cache.Insert("a", MakeResponse(1.0));
  cache.Insert("b", MakeResponse(2.0));
  // Make "a" the hot entry.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());

  cache.Insert("c", MakeResponse(3.0));  // over capacity: "b" (0 uses) goes
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ScoreCacheTest, LfuTieBreaksByOldestInsertion) {
  ScoreCacheOptions options;
  options.capacity = 2;
  ScoreCache cache(options);
  cache.Insert("old", MakeResponse(1.0));
  cache.Insert("new", MakeResponse(2.0));
  cache.Insert("c", MakeResponse(3.0));  // both have 0 uses: "old" goes
  EXPECT_FALSE(cache.Lookup("old").has_value());
  EXPECT_TRUE(cache.Lookup("new").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
}

TEST(ScoreCacheTest, ExpiredEntriesGoBeforeLfuVictims) {
  CacheOnFakeClock fixture(2, seconds(10));
  fixture.cache.Insert("stale", MakeResponse(1.0));
  // "stale" is the hot entry, but it is past TTL at the next insert.
  EXPECT_TRUE(fixture.cache.Lookup("stale").has_value());
  fixture.Advance(seconds(5));
  fixture.cache.Insert("fresh", MakeResponse(2.0));
  fixture.Advance(seconds(6));  // "stale" 11s old, "fresh" 6s old
  fixture.cache.Insert("c", MakeResponse(3.0));
  EXPECT_FALSE(fixture.cache.Lookup("stale").has_value());
  EXPECT_TRUE(fixture.cache.Lookup("fresh").has_value());
  EXPECT_TRUE(fixture.cache.Lookup("c").has_value());
  EXPECT_EQ(fixture.cache.stats().expirations, 1);
  EXPECT_EQ(fixture.cache.stats().evictions, 0);
}

TEST(ScoreCacheTest, ZeroCapacityDisablesCaching) {
  ScoreCacheOptions options;
  options.capacity = 0;
  ScoreCache cache(options);
  cache.Insert("k", MakeResponse(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().insertions, 0);
}

// A zero-capacity cache constructed with a TTL must behave like the plain
// zero-capacity cache: nothing is ever resident, so nothing can expire,
// and every lookup is an honest miss.
TEST(ScoreCacheTest, ZeroCapacityWithTtlConstruction) {
  CacheOnFakeClock fixture(0, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(11));
  fixture.cache.Insert("k2", MakeResponse(2.0));
  EXPECT_FALSE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.size(), 0u);

  const ScoreCacheStats stats = fixture.cache.stats();
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.expirations, 0);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.misses, 1);
}

// --- byte budgeting ---

TEST(ScoreCacheTest, KeySeparatesTopK) {
  RankRequest base;
  base.seeds = {3};
  RankRequest truncated = base;
  truncated.top_k = 10;
  EXPECT_NE(ScoreCache::KeyFor(base), ScoreCache::KeyFor(truncated));
  RankRequest other_k = base;
  other_k.top_k = 20;
  EXPECT_NE(ScoreCache::KeyFor(truncated), ScoreCache::KeyFor(other_k));
}

TEST(ScoreCacheTest, CompatConstructorIsEntryCountOnly) {
  ScoreCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_EQ(cache.capacity_bytes(), 0u);
  EXPECT_TRUE(cache.enabled());
  cache.Insert("a", MakeResponse(1.0));
  cache.Insert("b", MakeResponse(2.0));
  cache.Insert("c", MakeResponse(3.0));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScoreCacheTest, BytesInUseTracksInsertsAndRemovals) {
  ScoreCacheOptions options;
  options.capacity = 8;
  ScoreCache cache(options);
  EXPECT_EQ(cache.bytes_in_use(), 0u);

  const RankResponse response = MakeResponse(1.0);
  const size_t charge = ScoreCache::ChargeFor("a", response);
  EXPECT_GT(charge, response.scores.size() * sizeof(double));
  cache.Insert("a", response);
  EXPECT_EQ(cache.bytes_in_use(), charge);
  EXPECT_EQ(cache.stats().bytes_in_use, charge);

  cache.Insert("b", MakeResponse(2.0));
  EXPECT_GT(cache.bytes_in_use(), charge);
  cache.Clear();
  EXPECT_EQ(cache.bytes_in_use(), 0u);
}

TEST(ScoreCacheTest, ChargeGrowsWithPayload) {
  RankResponse small = MakeResponse(1.0);
  RankResponse big = MakeResponse(1.0);
  big.scores.assign(10000, 0.5);
  EXPECT_GT(ScoreCache::ChargeFor("k", big), ScoreCache::ChargeFor("k", small));
  RankResponse truncated;
  truncated.truncated = true;
  truncated.top.resize(10);
  EXPECT_LT(ScoreCache::ChargeFor("k", truncated),
            ScoreCache::ChargeFor("k", big));
}

TEST(ScoreCacheTest, ByteBudgetEvictsUntilTheNewEntryFits) {
  const size_t one = ScoreCache::ChargeFor("a", MakeResponse(1.0));
  ScoreCacheOptions options;
  options.capacity = 0;  // byte-limited only
  options.capacity_bytes = 2 * one + one / 2;  // room for two entries
  ScoreCache cache(options);
  EXPECT_TRUE(cache.enabled());

  cache.Insert("a", MakeResponse(1.0));
  cache.Insert("b", MakeResponse(2.0));
  EXPECT_EQ(cache.size(), 2u);
  // Make "b" hot so "a" is the LFU victim when the budget breaks.
  EXPECT_TRUE(cache.Lookup("b").has_value());

  cache.Insert("c", MakeResponse(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.bytes_in_use(), options.capacity_bytes);
}

TEST(ScoreCacheTest, OversizeResponseIsRejectedNotAdmitted) {
  ScoreCacheOptions options;
  options.capacity = 8;
  options.capacity_bytes = 4096;
  ScoreCache cache(options);
  cache.Insert("small", MakeResponse(1.0));
  ASSERT_EQ(cache.size(), 1u);

  RankResponse huge = MakeResponse(2.0);
  huge.scores.assign(100000, 0.1);  // ~800 KB against a 4 KB budget
  cache.Insert("huge", huge);
  // Rejected outright: the resident small entry was NOT flushed for an
  // entry that could never fit anyway.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup("huge").has_value());
  EXPECT_TRUE(cache.Lookup("small").has_value());
  EXPECT_EQ(cache.stats().oversize_rejections, 1);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(ScoreCacheTest, RefreshToLargerPayloadEvictsOthersNotItself) {
  const size_t one = ScoreCache::ChargeFor("a", MakeResponse(1.0));
  RankResponse big = MakeResponse(9.0);
  big.scores.assign(64, 0.25);
  const size_t big_charge = ScoreCache::ChargeFor("a", big);
  ASSERT_GT(big_charge, one);

  ScoreCacheOptions options;
  options.capacity = 0;
  options.capacity_bytes = big_charge + one;  // big + one small fit
  ScoreCache cache(options);
  cache.Insert("a", MakeResponse(1.0));
  cache.Insert("b", MakeResponse(2.0));
  cache.Insert("c", MakeResponse(3.0));
  ASSERT_EQ(cache.size(), 3u);

  // Refreshing "a" with the larger payload breaks the budget; the cache
  // must evict colder entries, never the entry just refreshed.
  cache.Insert("a", big);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_LT(cache.size(), 3u);
  EXPECT_LE(cache.bytes_in_use(), options.capacity_bytes);
  auto refreshed = cache.Lookup("a");
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ(refreshed->scores.size(), 64u);
}

TEST(ScoreCacheTest, ByteBudgetAloneEnablesTheCache) {
  ScoreCacheOptions options;
  options.capacity = 0;
  options.capacity_bytes = 1 << 20;
  ScoreCache cache(options);
  EXPECT_TRUE(cache.enabled());
  cache.Insert("k", MakeResponse(1.0));
  EXPECT_TRUE(cache.Lookup("k").has_value());

  ScoreCacheOptions disabled;
  disabled.capacity = 0;
  disabled.capacity_bytes = 0;
  ScoreCache off(disabled);
  EXPECT_FALSE(off.enabled());
  off.Insert("k", MakeResponse(1.0));
  EXPECT_FALSE(off.Lookup("k").has_value());
}

// Regression for the refresh-path budget audit: re-inserting an existing
// key with a payload whose charge exceeds the WHOLE byte budget must not
// leave bytes_in_use > capacity_bytes behind. The oversize admission
// gate rejects such an insert before the refresh path runs, so the
// resident entry keeps its old payload — and the budget invariant holds
// after the mutation (previously it held only *because* of that gate;
// the refresh loop itself would have parked the oversize payload and
// stopped with the budget permanently broken).
TEST(ScoreCacheTest, RefreshToOversizePayloadIsRejectedAndBudgetHolds) {
  ScoreCacheOptions options;
  options.capacity = 0;
  options.capacity_bytes = 4096;
  ScoreCache cache(options);
  cache.Insert("hot", MakeResponse(1.0));
  cache.Insert("cold", MakeResponse(2.0));
  ASSERT_EQ(cache.size(), 2u);
  ASSERT_LE(cache.bytes_in_use(), options.capacity_bytes);

  RankResponse huge = MakeResponse(3.0);
  huge.scores.assign(100000, 0.1);  // ~800 KB against a 4 KB budget
  ASSERT_GT(ScoreCache::ChargeFor("hot", huge), options.capacity_bytes);
  cache.Insert("hot", huge);

  EXPECT_LE(cache.bytes_in_use(), options.capacity_bytes);
  EXPECT_EQ(cache.stats().oversize_rejections, 1);
  // Neither resident entry was sacrificed for a payload that could never
  // fit, and "hot" still serves its original (pre-refresh) payload.
  EXPECT_EQ(cache.size(), 2u);
  auto hot = cache.Lookup("hot");
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->scores.size(), 3u);
  EXPECT_TRUE(cache.Lookup("cold").has_value());
}

// A refresh that grows the sole resident entry up to (but within) the
// budget keeps it: nothing to evict, invariant intact.
TEST(ScoreCacheTest, RefreshGrowingSoleEntryWithinBudgetKeepsIt) {
  RankResponse big = MakeResponse(5.0);
  big.scores.assign(64, 0.25);
  ScoreCacheOptions options;
  options.capacity = 0;
  options.capacity_bytes = ScoreCache::ChargeFor("only", big);
  ScoreCache cache(options);

  cache.Insert("only", MakeResponse(1.0));
  cache.Insert("only", big);  // grows to exactly the budget
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_LE(cache.bytes_in_use(), options.capacity_bytes);
  auto refreshed = cache.Lookup("only");
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ(refreshed->scores.size(), 64u);
  EXPECT_EQ(cache.stats().oversize_rejections, 0);
}

// Randomized budget-invariant fuzz: a mix of fresh inserts, refreshes
// (growing and shrinking), lookups, and TTL expiries, with
// bytes_in_use <= capacity_bytes asserted after EVERY mutation. The
// payload sizes straddle the budget so oversize rejections, eviction
// cascades, and refresh-grow paths all fire.
TEST(ScoreCacheTest, ByteBudgetInvariantHoldsUnderRandomizedChurn) {
  CacheOnFakeClock fixture(0, seconds(20));
  // Rebuild with a byte budget on the same fake clock.
  ScoreCacheOptions options;
  options.capacity = 0;
  options.capacity_bytes = 3 * ScoreCache::ChargeFor("k0", MakeResponse(1.0));
  options.ttl = seconds(20);
  options.now = [now = fixture.now] { return *now; };
  ScoreCache cache(options);

  uint64_t state = 0x2545f4914f6cdd1dull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int step = 0; step < 2000; ++step) {
    const std::string key = "k" + std::to_string(next() % 6);
    RankResponse response = MakeResponse(static_cast<double>(step));
    // 0, 8, 64, 512, 4096 doubles: the largest overshoots the budget.
    response.scores.assign(static_cast<size_t>(8) << (3 * (next() % 5)),
                           0.5);
    if (next() % 8 == 0) response.scores.clear();
    switch (next() % 4) {
      case 0:
        (void)cache.Lookup(key);
        break;
      case 1:
        fixture.Advance(seconds(next() % 9));
        cache.Insert(key, std::move(response));
        break;
      default:
        cache.Insert(key, std::move(response));
        break;
    }
    ASSERT_LE(cache.bytes_in_use(), options.capacity_bytes)
        << "budget broken at step " << step;
    if (cache.size() == 0) {
      ASSERT_EQ(cache.bytes_in_use(), 0u) << "phantom bytes at step " << step;
    }
  }
  const ScoreCacheStats stats = cache.stats();
  // The mix genuinely exercised all three budget paths.
  EXPECT_GT(stats.oversize_rejections, 0);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.insertions, 0);
  cache.Clear();
  EXPECT_EQ(cache.bytes_in_use(), 0u);
}

// Expiry is strict: an entry is stale only *past* its TTL, so a lookup at
// exactly the boundary tick still serves it (and a tick later does not).
TEST(ScoreCacheTest, TtlBoundaryTickStillServes) {
  CacheOnFakeClock fixture(8, seconds(10));
  fixture.cache.Insert("k", MakeResponse(1.0));
  fixture.Advance(seconds(10));  // age == TTL, not > TTL
  EXPECT_TRUE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.stats().expirations, 0);

  fixture.Advance(seconds(1));  // first tick past the boundary
  EXPECT_FALSE(fixture.cache.Lookup("k").has_value());
  EXPECT_EQ(fixture.cache.stats().expirations, 1);
}

}  // namespace
}  // namespace d2pr
