// TransitionStore: the persistent spill layer under D2prEngine's
// transition cache.
//
// Building a TransitionMatrix is the O(|E|) setup cost every serving
// process pays per (p, beta, metric) point — and pays again, from zero,
// after every restart. The store persists built matrices to a directory in
// a versioned little-endian binary format so a restarted process maps
// them back in instead of rebuilding:
//
//   d2pr transition store file, format version 1 (96-byte header):
//     [ 0,  8)  magic "D2PRTMTX"
//     [ 8, 12)  format version (u32)
//     [12, 16)  header bytes (u32, = 96)
//     [16, 24)  graph fingerprint (u64, see GraphFingerprint)
//     [24, 32)  num_nodes (i64)
//     [32, 40)  num_arcs (i64)
//     [40, 48)  key.p (f64, exact bits)
//     [48, 56)  key.beta (f64, exact bits)
//     [56, 60)  key.metric (u32)
//     [60, 64)  flags (u32, reserved, 0)
//     [64, 72)  probs section checksum (u64, FNV-1a)
//     [72, 80)  dangling section checksum (u64, FNV-1a)
//     [80, 88)  header checksum (u64, FNV-1a over bytes [0, 80))
//     [88, 96)  padding (0) — keeps the probs section 8-byte aligned
//     [96, 96 + 8*num_arcs)              probs payload (f64[])
//     [96 + 8*num_arcs, ... + num_nodes) dangling payload (u8[])
//
// The read path mmaps the file and wraps the payload sections as the
// matrix's storage directly — no copy, no parse, O(1) work beyond the
// (optional, O(bytes), still ~100x cheaper than a rebuild) checksum
// verification. The mapping lives inside the returned shared_ptr, so a
// loaded matrix is safe to hold across cache evictions and store rewrites
// (writers replace files atomically via rename, never in place).
//
// Safety model — a store file is used only when every gate passes, and a
// failed gate is a clear error, never a silent fallback:
//   * magic and format version match (old/foreign files are rejected;
//     format changes must bump kFormatVersion),
//   * the header checksum proves the header intact,
//   * the graph fingerprint, node count, and arc count match the serving
//     graph (a store can never be replayed against a different graph),
//   * the key stored in the header is bit-identical to the requested one
//     (a renamed file cannot impersonate another parameter point),
//   * the file has exactly the advertised size (truncation),
//   * per-section checksums prove the payload intact (bit flips).
//
// Concurrency: Save writes to a unique temp file and renames it into
// place, so concurrent writers (e.g. EngineRouter shards sharing one
// cache_dir) race benignly — last rename wins with a complete file, and
// readers only ever map complete files.

#ifndef D2PR_API_TRANSITION_STORE_H_
#define D2PR_API_TRANSITION_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/transition_cache.h"
#include "common/result.h"
#include "common/status.h"
#include "core/transition.h"

namespace d2pr {

/// \brief TransitionStore construction knobs.
struct TransitionStoreOptions {
  /// Verify the payload checksums on every Load. One pass over the mapped
  /// bytes — far cheaper than the rebuild it replaces; disable only when
  /// the store directory is trusted and pure O(1) mapping matters.
  bool verify_payload_checksums = true;
};

/// \brief Directory of persisted TransitionMatrix files, one per
/// (graph fingerprint, transition key).
class TransitionStore {
 public:
  /// The format version this build reads and writes. Any change to the
  /// layout above must bump it (the golden-file test enforces that the
  /// version-1 layout keeps loading byte-exactly).
  static constexpr uint32_t kFormatVersion = 1;

  explicit TransitionStore(std::string dir,
                           const TransitionStoreOptions& options = {});

  const std::string& dir() const { return dir_; }

  /// Deterministic file name for a (fingerprint, key) pair. Doubles are
  /// encoded by their exact bit pattern, so distinct keys never collide
  /// and equal keys always map to the same file.
  static std::string FileNameFor(uint64_t graph_fingerprint,
                                 const TransitionKey& key);

  /// Full path of the store file for (fingerprint, key).
  std::string PathFor(uint64_t graph_fingerprint,
                      const TransitionKey& key) const;

  /// True if a store file exists for (fingerprint, key). Existence only —
  /// Load still applies every validity gate.
  bool Contains(uint64_t graph_fingerprint, const TransitionKey& key) const;

  /// \brief Persists `matrix` under (fingerprint, key), creating the
  /// store directory if needed. Atomic: readers see the old file or the
  /// complete new one, never a partial write.
  Status Save(uint64_t graph_fingerprint, const TransitionKey& key,
              const TransitionMatrix& matrix) const;

  /// \brief Maps the matrix persisted under (fingerprint, key).
  ///
  /// `expected_num_nodes` / `expected_num_arcs` are the serving graph's
  /// counts; the header must match them exactly (the count gate backing
  /// up the fingerprint, and the bound that keeps every size computation
  /// below overflow-free of header-controlled values).
  ///
  /// NotFound when no file exists; FailedPrecondition when the file
  /// belongs to a different graph, key, or format version; IoError when
  /// the file is truncated or fails a checksum. The returned matrix is
  /// backed by the mapping (zero-copy) and stays valid for the
  /// shared_ptr's lifetime.
  Result<std::shared_ptr<const TransitionMatrix>> Load(
      uint64_t graph_fingerprint, const TransitionKey& key,
      NodeId expected_num_nodes, EdgeIndex expected_num_arcs) const;

 private:
  std::string dir_;
  TransitionStoreOptions options_;
};

}  // namespace d2pr

#endif  // D2PR_API_TRANSITION_STORE_H_
