// Shard-local transition slices: construction parity, the
// no-whole-graph-matrix guarantee of the subgraph path, sliced solver
// parity, edge-case shapes, and the serving-stack ownership pin.
//
// The load-bearing claims proven here (see core/transition_slices.h):
//   * BuildTransitionSlices is a pure permutation of the matrix:
//     in_probs[s][idx] == probs()[shard.in_arc_index[idx]], bit for bit;
//   * BuildTransitionSlicesLocal — which never materializes a whole-graph
//     TransitionMatrix (asserted via TransitionMatrix::BuildCount) —
//     produces bitwise the SAME slices from the shard rows plus the
//     O(|V|) broadcast metric state, for every metric, p sign, and the
//     weighted beta blend;
//   * the sliced block solvers inherit the parity contracts verbatim:
//     power bit-identical to SolvePagerank, Gauss-Seidel within 1e-9;
//   * GraphPartitioner's kHash ownership stays identical to
//     serve/ModuloShardMap, the coupling the serving stack routes by.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/rank_request.h"
#include "common/rng.h"
#include "core/block_solver.h"
#include "core/gauss_seidel.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "graph/partition.h"
#include "linalg/vec_ops.h"
#include "serve/engine_router.h"

namespace d2pr {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 8};
constexpr PartitionScheme kSchemes[] = {PartitionScheme::kRange,
                                        PartitionScheme::kHash};

/// Undirected, unweighted power-law graph (the paper's main regime).
CsrGraph UnweightedGraph() {
  Rng rng(42);
  auto graph = BarabasiAlbert(61, 2, &rng);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

/// Directed, weighted graph with dangling nodes — the regime where the
/// beta blend and dangling handling actually bite.
CsrGraph WeightedDirectedGraph() {
  Rng rng(7);
  GraphBuilder builder(40, GraphKind::kDirected, /*weighted=*/true);
  for (NodeId v = 0; v < 40; ++v) {
    if (v >= 35) continue;  // 35..39 stay dangling
    const int degree = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int j = 0; j < degree; ++j) {
      const auto target = static_cast<NodeId>(rng.UniformInt(0, 39));
      if (target == v) continue;
      EXPECT_TRUE(builder.AddEdge(v, target, 0.5 + rng.Uniform() * 3.0).ok());
    }
  }
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

/// Asserts `slices` is bitwise the permutation of `transition` through
/// `partition`'s in-CSR arc index — the structural cross-check both
/// construction paths must satisfy.
void ExpectSlicesMatchMatrix(const TransitionSlices& slices,
                             const GraphPartition& partition,
                             const TransitionMatrix& transition) {
  ASSERT_TRUE(partition.ValidateSlices(slices).ok());
  const auto probs = transition.probs();
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    ASSERT_EQ(slices.in_probs[s].size(), shard.in_arc_index.size());
    for (size_t idx = 0; idx < shard.in_arc_index.size(); ++idx) {
      // Bitwise, not approximate: EXPECT_EQ on doubles.
      EXPECT_EQ(slices.in_probs[s][idx],
                probs[static_cast<size_t>(shard.in_arc_index[idx])])
          << "shard " << s << " slice position " << idx;
    }
  }
  EXPECT_EQ(slices.dangling, transition.DanglingNodes());
  for (NodeId v = 0; v < slices.num_nodes; ++v) {
    EXPECT_EQ(slices.is_dangling[static_cast<size_t>(v)] != 0,
              transition.IsDangling(v));
  }
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

// ---------------------------------------------------------------------
// Construction parity: matrix path == local path, bit for bit.
// ---------------------------------------------------------------------

TEST(PartitionSliceTest, BothBuildPathsAreBitwiseIdenticalToTheMatrix) {
  const CsrGraph unweighted = UnweightedGraph();
  const CsrGraph weighted = WeightedDirectedGraph();
  for (const CsrGraph* graph : {&unweighted, &weighted}) {
    for (double p : {0.0, 0.7, -0.5}) {
      for (DegreeMetric metric :
           {DegreeMetric::kAuto, DegreeMetric::kOutDegree,
            DegreeMetric::kInDegree}) {
        TransitionConfig config;
        config.p = p;
        config.beta = graph->weighted() ? 0.3 : 0.0;
        config.metric = metric;
        auto transition = TransitionMatrix::Build(*graph, config);
        ASSERT_TRUE(transition.ok()) << transition.status().ToString();

        for (PartitionScheme scheme : kSchemes) {
          for (size_t shards : kShardCounts) {
            SCOPED_TRACE(std::string(graph->weighted() ? "weighted"
                                                       : "unweighted") +
                         " p=" + std::to_string(p) + " metric=" +
                         std::to_string(static_cast<int>(metric)) + " " +
                         PartitionSchemeName(scheme) + " x" +
                         std::to_string(shards));
            auto partition = GraphPartition::Build(
                *graph, {.scheme = scheme, .num_shards = shards});
            ASSERT_TRUE(partition.ok());

            auto from_matrix = BuildTransitionSlices(*partition, *transition);
            ASSERT_TRUE(from_matrix.ok());
            ExpectSlicesMatchMatrix(*from_matrix, *partition, *transition);

            auto local =
                BuildTransitionSlicesLocal(*graph, *partition, config);
            ASSERT_TRUE(local.ok()) << local.status().ToString();
            // The local path must match the matrix path bit for bit —
            // including the ±inf sentinel rows and uniform fallbacks.
            EXPECT_EQ(local->in_probs, from_matrix->in_probs);
            EXPECT_EQ(local->dangling, from_matrix->dangling);
            EXPECT_EQ(local->is_dangling, from_matrix->is_dangling);
          }
        }
      }
    }
  }
}

TEST(PartitionSliceTest, WeightedBetaBlendMetricsMatchBitwise) {
  // The beta blend adds the arc-weight / out-strength term; sweep beta
  // across its range (including the endpoints) under the weighted
  // metric, the config regime the paper's weighted model runs in.
  const CsrGraph graph = WeightedDirectedGraph();
  for (double beta : {0.0, 0.25, 1.0}) {
    TransitionConfig config;
    config.p = 0.5;
    config.beta = beta;
    config.metric = DegreeMetric::kOutStrength;
    auto transition = TransitionMatrix::Build(graph, config);
    ASSERT_TRUE(transition.ok());
    auto partition = GraphPartition::Build(
        graph, {.scheme = PartitionScheme::kHash, .num_shards = 3});
    ASSERT_TRUE(partition.ok());
    SCOPED_TRACE("beta=" + std::to_string(beta));
    auto local = BuildTransitionSlicesLocal(graph, *partition, config);
    ASSERT_TRUE(local.ok());
    ExpectSlicesMatchMatrix(*local, *partition, *transition);
  }
}

TEST(PartitionSliceTest, SubgraphPathNeverMaterializesAWholeGraphMatrix) {
  // The whole point of the local path: prove it by counting Build()
  // materializations across a full local construction. The counter is
  // process-wide, so take a before/after delta rather than an absolute.
  const CsrGraph graph = UnweightedGraph();
  auto partition = GraphPartition::Build(graph, {.num_shards = 4});
  ASSERT_TRUE(partition.ok());
  TransitionConfig config;
  config.p = 0.5;

  const uint64_t before = TransitionMatrix::BuildCount();
  auto local = BuildTransitionSlicesLocal(graph, *partition, config);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(TransitionMatrix::BuildCount(), before);

  // Sanity: the counter is live — an actual Build advances it.
  auto transition = TransitionMatrix::Build(graph, config);
  ASSERT_TRUE(transition.ok());
  EXPECT_EQ(TransitionMatrix::BuildCount(), before + 1);
}

TEST(PartitionSliceTest, LocalBuildRejectsExactlyWhatBuildRejects) {
  const CsrGraph graph = UnweightedGraph();
  auto partition = GraphPartition::Build(graph, {.num_shards = 2});
  ASSERT_TRUE(partition.ok());

  TransitionConfig bad_beta;
  bad_beta.beta = 1.5;
  EXPECT_EQ(
      BuildTransitionSlicesLocal(graph, *partition, bad_beta).status().code(),
      TransitionMatrix::Build(graph, bad_beta).status().code());

  TransitionConfig strength_on_unweighted;
  strength_on_unweighted.metric = DegreeMetric::kOutStrength;
  EXPECT_EQ(BuildTransitionSlicesLocal(graph, *partition,
                                       strength_on_unweighted)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Partition of a different graph: caught before any work.
  const CsrGraph other = WeightedDirectedGraph();
  auto other_partition = GraphPartition::Build(other, {.num_shards = 2});
  ASSERT_TRUE(other_partition.ok());
  EXPECT_EQ(BuildTransitionSlicesLocal(graph, *other_partition, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto transition = TransitionMatrix::Build(other, {});
  ASSERT_TRUE(transition.ok());
  EXPECT_EQ(
      BuildTransitionSlices(*partition, *transition).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Edge-case shapes.
// ---------------------------------------------------------------------

TEST(PartitionSliceTest, EmptyGraphYieldsEmptySlices) {
  const CsrGraph empty;
  auto partition = GraphPartition::Build(empty, {.num_shards = 4});
  ASSERT_TRUE(partition.ok());
  auto local = BuildTransitionSlicesLocal(empty, *partition, {});
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->num_nodes, 0);
  ASSERT_EQ(local->in_probs.size(), 4u);
  for (const auto& slice : local->in_probs) EXPECT_TRUE(slice.empty());
  EXPECT_TRUE(local->dangling.empty());
  auto transition = TransitionMatrix::Build(empty, {});
  ASSERT_TRUE(transition.ok());
  ExpectSlicesMatchMatrix(*local, *partition, *transition);
}

TEST(PartitionSliceTest, AllDanglingShardHasEmptyRowsAndFullDanglingView) {
  // Range-partitioning 8 nodes into 4 shards puts the all-dangling tail
  // (nodes 6, 7 never get out-arcs) alone on the last shard.
  GraphBuilder builder(8, GraphKind::kDirected, /*weighted=*/false);
  for (NodeId v = 0; v < 6; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % 6).ok());
    ASSERT_TRUE(builder.AddEdge(v, 6 + (v % 2)).ok());
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(
      *graph, {.scheme = PartitionScheme::kRange, .num_shards = 4});
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->shard(3).dangling_owned.size(), 2u);

  TransitionConfig config;
  config.p = 0.4;
  auto transition = TransitionMatrix::Build(*graph, config);
  ASSERT_TRUE(transition.ok());
  auto local = BuildTransitionSlicesLocal(*graph, *partition, config);
  ASSERT_TRUE(local.ok());
  ExpectSlicesMatchMatrix(*local, *partition, *transition);
  EXPECT_EQ(local->dangling, (std::vector<NodeId>{6, 7}));
  // The dangling nodes still RECEIVE arcs: their owner's slice is
  // non-empty even though the nodes emit nothing.
  EXPECT_FALSE(local->in_probs[3].empty());
}

TEST(PartitionSliceTest, MoreShardsThanNodesLeavesTrailingSlicesEmpty) {
  Rng rng(3);
  auto graph = ErdosRenyi(5, 8, &rng);
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(*graph, {.num_shards = 9});
  ASSERT_TRUE(partition.ok());
  TransitionConfig config;
  config.p = -0.3;
  auto transition = TransitionMatrix::Build(*graph, config);
  ASSERT_TRUE(transition.ok());
  auto local = BuildTransitionSlicesLocal(*graph, *partition, config);
  ASSERT_TRUE(local.ok());
  ExpectSlicesMatchMatrix(*local, *partition, *transition);
  for (size_t s = 5; s < 9; ++s) {
    EXPECT_TRUE(partition->shard(s).owned.empty());
    EXPECT_TRUE(local->in_probs[s].empty());
  }
}

TEST(PartitionSliceTest, ValidateSlicesCatchesEveryShapeMismatch) {
  const CsrGraph graph = UnweightedGraph();
  auto partition = GraphPartition::Build(graph, {.num_shards = 2});
  ASSERT_TRUE(partition.ok());
  auto transition = TransitionMatrix::Build(graph, {});
  ASSERT_TRUE(transition.ok());
  auto good = BuildTransitionSlices(*partition, *transition);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(partition->ValidateSlices(*good).ok());

  TransitionSlices wrong_nodes = *good;
  wrong_nodes.num_nodes = 3;
  EXPECT_FALSE(partition->ValidateSlices(wrong_nodes).ok());

  TransitionSlices wrong_shards = *good;
  wrong_shards.in_probs.pop_back();
  EXPECT_FALSE(partition->ValidateSlices(wrong_shards).ok());

  TransitionSlices wrong_arcs = *good;
  wrong_arcs.in_probs[0].push_back(0.0);
  EXPECT_FALSE(partition->ValidateSlices(wrong_arcs).ok());

  TransitionSlices wrong_bitmap = *good;
  wrong_bitmap.is_dangling.pop_back();
  EXPECT_FALSE(partition->ValidateSlices(wrong_bitmap).ok());
}

// ---------------------------------------------------------------------
// Sliced solver parity.
// ---------------------------------------------------------------------

TEST(PartitionSliceTest, SlicedPowerIsBitIdenticalToTheReference) {
  const CsrGraph unweighted = UnweightedGraph();
  const CsrGraph weighted = WeightedDirectedGraph();
  for (const CsrGraph* graph : {&unweighted, &weighted}) {
    TransitionConfig config;
    config.p = 0.7;
    config.beta = graph->weighted() ? 0.3 : 0.0;
    auto transition = TransitionMatrix::Build(*graph, config);
    ASSERT_TRUE(transition.ok());

    for (DanglingPolicy policy :
         {DanglingPolicy::kTeleport, DanglingPolicy::kSelfLoop,
          DanglingPolicy::kRenormalize}) {
      PagerankOptions options;
      options.alpha = 0.85;
      options.tolerance = 1e-12;
      options.max_iterations = 5000;
      options.dangling = policy;
      const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
      auto reference = SolvePagerank(*graph, *transition, teleport, options);
      ASSERT_TRUE(reference.ok());

      for (PartitionScheme scheme : kSchemes) {
        for (size_t shards : kShardCounts) {
          SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x" +
                       std::to_string(shards) + " policy=" +
                       std::to_string(static_cast<int>(policy)));
          auto partition = GraphPartition::Build(
              *graph, {.scheme = scheme, .num_shards = shards});
          ASSERT_TRUE(partition.ok());
          // Both construction paths, both solved; all three results
          // (matrix overload included) must carry the same bits.
          auto from_matrix = BuildTransitionSlices(*partition, *transition);
          ASSERT_TRUE(from_matrix.ok());
          auto local = BuildTransitionSlicesLocal(*graph, *partition, config);
          ASSERT_TRUE(local.ok());
          for (const TransitionSlices* slices :
               {&*from_matrix, &*local}) {
            auto block = SolvePagerankPartitioned(*slices, *partition,
                                                  teleport, options);
            ASSERT_TRUE(block.ok()) << block.status().ToString();
            EXPECT_EQ(block->scores, reference->scores);
            EXPECT_EQ(block->iterations, reference->iterations);
            EXPECT_EQ(block->residual, reference->residual);
          }
        }
      }
    }
  }
}

TEST(PartitionSliceTest, SlicedGaussSeidelAgreesWithinTolerance) {
  const CsrGraph graph = WeightedDirectedGraph();
  TransitionConfig config;
  config.p = 0.6;
  config.beta = 0.3;
  auto transition = TransitionMatrix::Build(graph, config);
  ASSERT_TRUE(transition.ok());

  PagerankOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-11;
  options.max_iterations = 5000;
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  auto reference =
      SolvePagerankGaussSeidel(graph, *transition, teleport, options);
  ASSERT_TRUE(reference.ok());

  for (size_t shards : kShardCounts) {
    SCOPED_TRACE("x" + std::to_string(shards));
    auto partition = GraphPartition::Build(graph, {.num_shards = shards});
    ASSERT_TRUE(partition.ok());
    auto local = BuildTransitionSlicesLocal(graph, *partition, config);
    ASSERT_TRUE(local.ok());
    auto block =
        SolveGaussSeidelPartitioned(*local, *partition, teleport, options);
    ASSERT_TRUE(block.ok());
    EXPECT_TRUE(block->converged);
    EXPECT_LE(MaxAbsDiff(block->scores, reference->scores), 1e-9);
    EXPECT_NEAR(Sum(block->scores), 1.0, 1e-12);

    // And bit-identical to the matrix-overload block solve, which uses
    // the same frozen-exchange sweep over the same probabilities.
    auto matrix_block =
        SolveGaussSeidelPartitioned(*transition, *partition, teleport,
                                    options);
    ASSERT_TRUE(matrix_block.ok());
    EXPECT_EQ(block->scores, matrix_block->scores);
    EXPECT_EQ(block->iterations, matrix_block->iterations);
  }
}

TEST(PartitionSliceTest, SlicedSolversValidateShapes) {
  const CsrGraph graph = UnweightedGraph();
  auto partition = GraphPartition::Build(graph, {.num_shards = 2});
  ASSERT_TRUE(partition.ok());
  auto transition = TransitionMatrix::Build(graph, {});
  ASSERT_TRUE(transition.ok());
  auto slices = BuildTransitionSlices(*partition, *transition);
  ASSERT_TRUE(slices.ok());
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());

  TransitionSlices misshapen = *slices;
  misshapen.in_probs[0].pop_back();
  EXPECT_EQ(SolvePagerankPartitioned(misshapen, *partition, teleport,
                                     PagerankOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  PagerankOptions renormalize;
  renormalize.dangling = DanglingPolicy::kRenormalize;
  EXPECT_EQ(SolveGaussSeidelPartitioned(*slices, *partition, teleport,
                                        renormalize)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Serving stack.
// ---------------------------------------------------------------------

TEST(PartitionSliceTest, RouterSubgraphSliceModeMatchesSingleEngine) {
  // kSubgraph end to end: the router serves bit-identical power scores
  // (and tolerance-close Gauss-Seidel) without ever materializing a
  // whole-graph matrix.
  const CsrGraph graph = UnweightedGraph();
  D2prEngine engine = D2prEngine::Borrowing(graph);

  RouterOptions options;
  options.num_shards = 4;
  options.policy = RoutingPolicy::kPartitionedSubgraph;
  options.partition_scheme = PartitionScheme::kHash;
  options.partition_slice_build = SliceBuild::kSubgraph;
  EngineRouter router = EngineRouter::Borrowing(graph, options);

  const uint64_t before = TransitionMatrix::BuildCount();
  RankRequest request;
  request.p = 0.6;
  request.seeds = {3, 11};
  request.tolerance = 1e-11;
  auto routed = router.Rank(request);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  auto reference = engine.Rank(request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(routed->scores, reference->scores);
  EXPECT_EQ(routed->iterations, reference->iterations);
  EXPECT_TRUE(routed->served_partitioned);

  // No whole-graph matrix was built by the router (the single-engine
  // reference built its own — count it out of the delta), and the
  // matrix-side counters never moved.
  EXPECT_EQ(TransitionMatrix::BuildCount(), before + 1);
  EXPECT_EQ(router.partition_transition_builds(), 0);
  EXPECT_EQ(router.partition_transition_store_loads(), 0);
  EXPECT_EQ(router.partition_slice_builds(), 1);

  // Second identical request: served from the slice cache.
  auto again = router.Rank(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->scores, reference->scores);
  EXPECT_TRUE(again->transition_cache_hit);
  EXPECT_EQ(router.partition_slice_builds(), 1);
  EXPECT_EQ(TransitionMatrix::BuildCount(), before + 1);
}

TEST(PartitionSliceTest, RouterFromMatrixModeKeepsMatrixAccounting) {
  // The default kFromMatrix path must keep the historical matrix-side
  // observables: one build then cache hits, slices riding behind.
  const CsrGraph graph = UnweightedGraph();
  RouterOptions options;
  options.num_shards = 2;
  options.policy = RoutingPolicy::kPartitionedSubgraph;
  EngineRouter router = EngineRouter::Borrowing(graph, options);

  RankRequest request;
  request.p = 0.5;
  ASSERT_TRUE(router.Rank(request).ok());
  EXPECT_EQ(router.partition_transition_builds(), 1);
  EXPECT_EQ(router.partition_slice_builds(), 1);
  auto again = router.Rank(request);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->transition_cache_hit);
  EXPECT_EQ(router.partition_transition_builds(), 1);
  EXPECT_EQ(router.partition_slice_builds(), 1);
}

TEST(PartitionSliceTest, HashOwnershipPinsToModuloShardMap) {
  // The serving stack routes seeds by ModuloShardMap and partitions
  // nodes by GraphPartition's kHash OwnerOf; kPartitionedSubgraph relies
  // on the two agreeing for every node and shard count. Pin it.
  const ModuloShardMap shard_map;
  Rng rng(11);
  auto graph = ErdosRenyi(257, 1000, &rng);
  ASSERT_TRUE(graph.ok());
  for (size_t shards : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
    auto partition = GraphPartition::Build(
        *graph, {.scheme = PartitionScheme::kHash,
                 .num_shards = static_cast<size_t>(shards)});
    ASSERT_TRUE(partition.ok());
    for (NodeId v = 0; v < graph->num_nodes(); ++v) {
      ASSERT_EQ(partition->OwnerOf(v), shard_map.OwnerOf(v, shards))
          << "node " << v << " shards " << shards;
    }
  }
}

}  // namespace
}  // namespace d2pr
