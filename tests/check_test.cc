#include "common/check.h"

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  D2PR_CHECK(true);
  D2PR_CHECK_EQ(1, 1);
  D2PR_CHECK_NE(1, 2);
  D2PR_CHECK_LT(1, 2);
  D2PR_CHECK_LE(1, 1);
  D2PR_CHECK_GT(2, 1);
  D2PR_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(D2PR_CHECK(false) << "extra context", "CHECK failed: false");
}

TEST(CheckDeathTest, FailureMessageIncludesStreamedContext) {
  EXPECT_DEATH(D2PR_CHECK(1 == 2) << "value was " << 7, "value was 7");
}

TEST(CheckDeathTest, ComparisonMacrosAbort) {
  EXPECT_DEATH(D2PR_CHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(D2PR_CHECK_LT(2, 1), "CHECK failed");
}

TEST(CheckTest, CheckDoesNotDoubleEvaluate) {
  int calls = 0;
  auto increment = [&calls]() { return ++calls > 0; };
  D2PR_CHECK(increment());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace d2pr
