// TransitionStore correctness: byte-exact round-trips for every metric,
// rejection of every way a store file can lie (wrong graph, wrong key,
// wrong version, truncation, bit flips), and single-flight loading under
// concurrency. The store is the restart path of the serving engine, so a
// bad file must never be used silently — only rejected with a clear
// error and rebuilt.

#include "api/transition_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_fingerprint.h"

namespace d2pr {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/d2pr_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CsrGraph WeightedDirectedGraph() {
  GraphBuilder builder(5, GraphKind::kDirected, /*weighted=*/true);
  EXPECT_TRUE(builder.AddEdge(0, 1, 2.0).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 3.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, 5.0).ok());
  EXPECT_TRUE(builder.AddEdge(3, 0, 0.5).ok());
  auto graph = builder.Build();  // node 4 stays dangling
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::shared_ptr<const TransitionMatrix> BuildMatrix(const CsrGraph& graph,
                                                    const TransitionKey& key) {
  auto built = TransitionMatrix::Build(
      graph, {.p = key.p, .beta = key.beta, .metric = key.metric});
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::make_shared<const TransitionMatrix>(std::move(built).value());
}

void ExpectByteExact(const TransitionMatrix& loaded,
                     const TransitionMatrix& built) {
  ASSERT_EQ(loaded.num_nodes(), built.num_nodes());
  ASSERT_EQ(loaded.probs().size(), built.probs().size());
  EXPECT_EQ(std::memcmp(loaded.probs().data(), built.probs().data(),
                        built.probs().size_bytes()),
            0);
  for (NodeId v = 0; v < built.num_nodes(); ++v) {
    EXPECT_EQ(loaded.IsDangling(v), built.IsDangling(v)) << "node " << v;
  }
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

TEST(TransitionStoreTest, RoundTripIsByteExactForEveryMetric) {
  Rng rng(11);
  auto undirected = ErdosRenyi(60, 180, &rng);
  ASSERT_TRUE(undirected.ok());
  const CsrGraph weighted = WeightedDirectedGraph();

  struct Case {
    const CsrGraph* graph;
    TransitionKey key;
  };
  const Case cases[] = {
      {&*undirected, {0.5, 0.0, DegreeMetric::kOutDegree}},
      {&*undirected, {-1.25, 0.0, DegreeMetric::kOutDegree}},
      {&*undirected, {2.0, 0.0, DegreeMetric::kInDegree}},
      {&weighted, {0.75, 0.0, DegreeMetric::kOutStrength}},
      {&weighted, {0.75, 0.25, DegreeMetric::kOutStrength}},
      {&weighted, {0.0, 1.0, DegreeMetric::kOutDegree}},
  };

  TransitionStore store(FreshDir("roundtrip"));
  for (const Case& c : cases) {
    SCOPED_TRACE(testing::Message() << "p=" << c.key.p << " beta="
                                    << c.key.beta << " metric="
                                    << static_cast<int>(c.key.metric));
    const uint64_t fp = GraphFingerprint(*c.graph);
    auto built = BuildMatrix(*c.graph, c.key);
    ASSERT_TRUE(store.Save(fp, c.key, *built).ok());
    auto loaded = store.Load(fp, c.key, c.graph->num_nodes(),
                             c.graph->num_arcs());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectByteExact(**loaded, *built);
  }
}

TEST(TransitionStoreTest, LoadedMatrixOutlivesStoreFileReplacement) {
  Rng rng(12);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{1.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("replace"));
  auto built = BuildMatrix(*graph, key);
  ASSERT_TRUE(store.Save(fp, key, *built).ok());

  auto loaded = store.Load(fp, key, graph->num_nodes(),
                           graph->num_arcs());
  ASSERT_TRUE(loaded.ok());
  // A writer replacing the file must not mutate the mapped matrix: Save
  // goes through rename, and the mapping is MAP_PRIVATE.
  ASSERT_TRUE(store.Save(fp, key, *built).ok());
  ExpectByteExact(**loaded, *built);
}

TEST(TransitionStoreTest, MissingFileIsNotFound) {
  Rng rng(13);
  auto graph = ErdosRenyi(30, 90, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionStore store(FreshDir("missing"));
  auto loaded = store.Load(GraphFingerprint(*graph),
                           {0.5, 0.0, DegreeMetric::kOutDegree},
                           graph->num_nodes(), graph->num_arcs());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// A file saved for one graph, renamed to another graph's slot, must be
// rejected by the header fingerprint — the filename alone is never
// trusted.
TEST(TransitionStoreTest, GraphFingerprintMismatchIsRejected) {
  Rng rng(14);
  auto graph = ErdosRenyi(50, 150, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const uint64_t other_fp = fp ^ 0x1;
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("fingerprint"));
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  std::filesystem::rename(store.PathFor(fp, key),
                          store.PathFor(other_fp, key));
  auto loaded = store.Load(other_fp, key, graph->num_nodes(),
                           graph->num_arcs());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("fingerprint"), std::string::npos)
      << loaded.status().ToString();
}

// Same defense for the key: a file renamed to another (p, beta, metric)
// slot is caught by the bit-exact key comparison in the header.
TEST(TransitionStoreTest, KeyMismatchAfterRenameIsRejected) {
  Rng rng(15);
  auto graph = ErdosRenyi(50, 150, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key_a{0.5, 0.0, DegreeMetric::kOutDegree};
  const TransitionKey key_b{0.25, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("keyswap"));
  ASSERT_TRUE(store.Save(fp, key_a, *BuildMatrix(*graph, key_a)).ok());

  std::filesystem::rename(store.PathFor(fp, key_a), store.PathFor(fp, key_b));
  auto loaded = store.Load(fp, key_b, graph->num_nodes(),
                           graph->num_arcs());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("key"), std::string::npos);
}

TEST(TransitionStoreTest, BadMagicIsRejected) {
  Rng rng(16);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("magic"));
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  const std::string path = store.PathFor(fp, key);
  std::vector<char> bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto loaded = store.Load(fp, key, graph->num_nodes(),
                           graph->num_arcs());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST(TransitionStoreTest, FutureFormatVersionIsRejected) {
  Rng rng(17);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("version"));
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  const std::string path = store.PathFor(fp, key);
  std::vector<char> bytes = ReadFileBytes(path);
  const uint32_t future = TransitionStore::kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  WriteFileBytes(path, bytes);
  auto loaded = store.Load(fp, key, graph->num_nodes(),
                           graph->num_arcs());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(TransitionStoreTest, TruncatedFileIsRejected) {
  Rng rng(18);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("truncate"));
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  const std::string path = store.PathFor(fp, key);
  const auto full_size = std::filesystem::file_size(path);
  // Every truncation point must fail cleanly: mid-payload, exactly at the
  // header boundary, and inside the header.
  for (const uintmax_t keep :
       {full_size - 1, full_size - 17, uintmax_t{96}, uintmax_t{40}}) {
    SCOPED_TRACE(testing::Message() << "truncated to " << keep << " bytes");
    std::vector<char> bytes = ReadFileBytes(path);
    bytes.resize(static_cast<size_t>(keep));
    WriteFileBytes(path, bytes);
    auto loaded = store.Load(fp, key, graph->num_nodes(),
                           graph->num_arcs());
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
    // Restore for the next truncation point.
    ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());
  }
}

TEST(TransitionStoreTest, PayloadBitFlipIsRejectedByChecksum) {
  Rng rng(19);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("bitflip"));
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  const std::string path = store.PathFor(fp, key);
  const std::vector<char> pristine = ReadFileBytes(path);
  // One flip in the probs section, one in the dangling section.
  const size_t probs_offset = 96 + 8;
  const size_t dangling_offset = pristine.size() - 1;
  for (const size_t offset : {probs_offset, dangling_offset}) {
    SCOPED_TRACE(testing::Message() << "bit flip at byte " << offset);
    std::vector<char> bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    WriteFileBytes(path, bytes);
    auto loaded = store.Load(fp, key, graph->num_nodes(),
                           graph->num_arcs());
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
    EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
  }
}

TEST(TransitionStoreTest, HeaderBitFlipIsRejectedByHeaderChecksum) {
  Rng rng(20);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  TransitionStore store(FreshDir("headerflip"));
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  const std::string path = store.PathFor(fp, key);
  std::vector<char> bytes = ReadFileBytes(path);
  bytes[24] = static_cast<char>(bytes[24] ^ 0x01);  // num_nodes field
  WriteFileBytes(path, bytes);
  auto loaded = store.Load(fp, key, graph->num_nodes(),
                           graph->num_arcs());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

// Documents the verify_payload_checksums tradeoff: with verification off
// the mapped payload is trusted as-is (pure O(1) load), so a payload flip
// goes undetected — which is exactly why it defaults to on.
TEST(TransitionStoreTest, PayloadVerificationCanBeDisabled) {
  Rng rng(21);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  const uint64_t fp = GraphFingerprint(*graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  const std::string dir = FreshDir("noverify");
  TransitionStore store(dir);
  ASSERT_TRUE(store.Save(fp, key, *BuildMatrix(*graph, key)).ok());

  const std::string path = store.PathFor(fp, key);
  std::vector<char> bytes = ReadFileBytes(path);
  bytes[96] = static_cast<char>(bytes[96] ^ 0x40);
  WriteFileBytes(path, bytes);

  ASSERT_FALSE(
      store.Load(fp, key, graph->num_nodes(), graph->num_arcs()).ok());
  TransitionStore trusting(dir, {.verify_payload_checksums = false});
  EXPECT_TRUE(
      trusting.Load(fp, key, graph->num_nodes(), graph->num_arcs()).ok());
}

// Concurrent cold misses on one key must single-flight through the store
// exactly like they single-flight through a build: one mmap, everyone
// else takes the cache hit.
TEST(TransitionStoreTest, ConcurrentEngineLoadsAreSingleFlighted) {
  Rng rng(22);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("singleflight");

  RankRequest request;
  request.p = 0.5;
  {
    EngineOptions options;
    options.cache_dir = dir;
    D2prEngine warmer = D2prEngine::Borrowing(*graph, options);
    ASSERT_TRUE(warmer.Rank(request).ok());
  }

  EngineOptions options;
  options.cache_dir = dir;
  D2prEngine engine = D2prEngine::Borrowing(*graph, options);
  constexpr int kThreads = 8;
  std::latch start(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      auto response = engine.Rank(request);
      EXPECT_TRUE(response.ok());
    });
  }
  for (std::thread& t : threads) t.join();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kThreads);
  EXPECT_EQ(stats.transition_builds, 0);
  EXPECT_EQ(stats.transition_store_loads, 1);
  EXPECT_EQ(stats.transition_store_loads + stats.transition_cache_hits,
            kThreads);
}

// With the in-memory cache disabled there is no single-flight, but the
// store still replaces every rebuild with a load.
TEST(TransitionStoreTest, ZeroCapacityCacheStillLoadsFromStore) {
  Rng rng(23);
  auto graph = ErdosRenyi(60, 180, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("zerocap");

  RankRequest request;
  request.p = 0.5;
  {
    EngineOptions options;
    options.cache_dir = dir;
    D2prEngine warmer = D2prEngine::Borrowing(*graph, options);
    ASSERT_TRUE(warmer.Rank(request).ok());
  }

  EngineOptions options;
  options.cache_dir = dir;
  options.transition_cache_capacity = 0;
  D2prEngine engine = D2prEngine::Borrowing(*graph, options);
  ASSERT_TRUE(engine.Rank(request).ok());
  ASSERT_TRUE(engine.Rank(request).ok());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.transition_builds, 0);
  EXPECT_EQ(stats.transition_store_loads, 2);
}

}  // namespace
}  // namespace d2pr
