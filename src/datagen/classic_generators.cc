#include "datagen/classic_generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace d2pr {

Result<CsrGraph> ErdosRenyi(NodeId num_nodes, int64_t num_edges, Rng* rng) {
  if (num_nodes < 0) return Status::InvalidArgument("negative node count");
  const int64_t max_edges =
      static_cast<int64_t>(num_nodes) * (num_nodes - 1) / 2;
  if (num_edges < 0 || num_edges > max_edges) {
    return Status::InvalidArgument(
        StrCat("edge count ", num_edges, " outside [0, ", max_edges, "]"));
  }
  // Rejection sampling of distinct pairs; fine while m << n^2 (the dense
  // regime falls back to acceptably few retries because m <= n(n-1)/2).
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_edges) * 2);
  GraphBuilder builder(num_nodes, GraphKind::kUndirected);
  int64_t added = 0;
  while (added < num_edges) {
    const NodeId u =
        static_cast<NodeId>(rng->Below(static_cast<uint64_t>(num_nodes)));
    const NodeId v =
        static_cast<NodeId>(rng->Below(static_cast<uint64_t>(num_nodes)));
    if (u == v) continue;
    const uint64_t key =
        (static_cast<uint64_t>(std::min(u, v)) << 32) |
        static_cast<uint32_t>(std::max(u, v));
    if (!seen.insert(key).second) continue;
    D2PR_RETURN_NOT_OK(builder.AddEdge(u, v));
    ++added;
  }
  return builder.Build(DuplicatePolicy::kError);
}

Result<CsrGraph> BarabasiAlbert(NodeId num_nodes, int32_t edges_per_node,
                                Rng* rng) {
  if (edges_per_node < 1) {
    return Status::InvalidArgument("edges_per_node must be >= 1");
  }
  if (num_nodes <= edges_per_node) {
    return Status::InvalidArgument(
        StrCat("need more than ", edges_per_node, " nodes"));
  }
  GraphBuilder builder(num_nodes, GraphKind::kUndirected);
  // Repeated-endpoint list: picking a uniform element samples ∝ degree.
  std::vector<NodeId> endpoints;
  const NodeId seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      D2PR_RETURN_NOT_OK(builder.AddEdge(u, v));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<NodeId> picked;
  for (NodeId u = seed_size; u < num_nodes; ++u) {
    picked.clear();
    while (static_cast<int32_t>(picked.size()) < edges_per_node) {
      const NodeId v = endpoints[static_cast<size_t>(
          rng->Below(endpoints.size()))];
      picked.insert(v);
    }
    for (NodeId v : picked) {
      D2PR_RETURN_NOT_OK(builder.AddEdge(u, v));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return builder.Build(DuplicatePolicy::kError);
}

Result<CsrGraph> WattsStrogatz(NodeId num_nodes, int32_t k,
                               double rewire_prob, Rng* rng) {
  if (k < 1 || 2 * k >= num_nodes) {
    return Status::InvalidArgument(
        StrCat("k must satisfy 1 <= k and 2k < n; got k=", k, ", n=",
               num_nodes));
  }
  if (rewire_prob < 0.0 || rewire_prob > 1.0) {
    return Status::InvalidArgument("rewire_prob must lie in [0, 1]");
  }
  // Edge set as packed keys so rewiring can test membership.
  std::unordered_set<uint64_t> edges;
  auto key = [](NodeId a, NodeId b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) |
           static_cast<uint32_t>(std::max(a, b));
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int32_t j = 1; j <= k; ++j) {
      edges.insert(key(u, static_cast<NodeId>((u + j) % num_nodes)));
    }
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (int32_t j = 1; j <= k; ++j) {
      if (!rng->Bernoulli(rewire_prob)) continue;
      const NodeId old_v = static_cast<NodeId>((u + j) % num_nodes);
      const uint64_t old_key = key(u, old_v);
      if (!edges.count(old_key)) continue;  // already rewired away
      // Find a fresh target (bounded retries to guarantee termination).
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId v = static_cast<NodeId>(
            rng->Below(static_cast<uint64_t>(num_nodes)));
        if (v == u || edges.count(key(u, v))) continue;
        edges.erase(old_key);
        edges.insert(key(u, v));
        break;
      }
    }
  }
  GraphBuilder builder(num_nodes, GraphKind::kUndirected);
  for (uint64_t packed : edges) {
    D2PR_RETURN_NOT_OK(builder.AddEdge(static_cast<NodeId>(packed >> 32),
                                       static_cast<NodeId>(packed &
                                                           0xffffffffULL)));
  }
  return builder.Build(DuplicatePolicy::kError);
}

Result<CsrGraph> ChungLu(const std::vector<double>& expected_degrees,
                         Rng* rng) {
  const NodeId n = static_cast<NodeId>(expected_degrees.size());
  double total = 0.0;
  for (double w : expected_degrees) {
    if (w < 0.0) return Status::InvalidArgument("negative expected degree");
    total += w;
  }
  if (n > 0 && total <= 0.0) {
    return Status::InvalidArgument("expected degrees sum to zero");
  }
  GraphBuilder builder(n, GraphKind::kUndirected);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double prob =
          std::min(1.0, expected_degrees[static_cast<size_t>(u)] *
                            expected_degrees[static_cast<size_t>(v)] / total);
      if (rng->Bernoulli(prob)) {
        D2PR_RETURN_NOT_OK(builder.AddEdge(u, v));
      }
    }
  }
  return builder.Build(DuplicatePolicy::kError);
}

}  // namespace d2pr
