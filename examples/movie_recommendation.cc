// Movie-world recommendation: the paper's motivating Example 1.
//
// Generates a synthetic movie industry with the cost-budget mechanism
// (good movies cost actors more effort, so discriminating "A-movie" actors
// appear in few films), builds the actor-actor co-star graph, and contrasts
// the actors surfaced by conventional PageRank against degree de-coupled
// PageRank. Ground truth (average quality of an actor's movies) decides
// which ranking is better.
//
//   $ ./build/examples/movie_recommendation

#include <cstdio>

#include "api/engine.h"
#include "common/rng.h"
#include "core/sweeps.h"
#include "datagen/bipartite_world.h"
#include "datagen/projection.h"
#include "datagen/significance.h"
#include "stats/correlation.h"
#include "stats/ranking.h"

int main() {
  using namespace d2pr;

  // A small movie industry: 1200 actors, 600 movies. Prestigious movies
  // cost up to 4.5x the effort of B-movies.
  BipartiteWorldConfig config;
  config.num_members = 1200;   // actors
  config.num_venues = 600;     // movies
  config.venue_size_min = 2;
  config.venue_size_max = 10;
  config.affinity = 5.0;       // casting is quality-assortative
  config.cost_base = 1.0;
  config.cost_quality_slope = 3.5;
  config.budget_mean = 10.0;
  config.budget_sigma = 0.4;
  config.seed = 20160315;      // the workshop date
  auto world = GenerateBipartiteWorld(config);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %lld movie castings across %d movies, %d actors\n",
              static_cast<long long>(world->TotalMemberships()),
              config.num_venues, config.num_members);

  // Actor-actor co-star graph, weighted by number of shared movies.
  ProjectionConfig projection;
  projection.weighted = true;
  auto graph = ProjectMembers(*world, projection);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Co-star graph: %d actors, %lld edges\n\n",
              graph->num_nodes(),
              static_cast<long long>(graph->num_edges()));

  // Ground truth significance: average rating of the movies acted in.
  Rng noise(7);
  const std::vector<double> significance =
      AvgVenueQualitySignificance(*world, /*noise_sigma=*/0.05, &noise);

  // Rank actors at several de-coupling weights. The engine sweep reuses
  // one warm-start trajectory, so the later points cost a fraction of a
  // cold solve each.
  D2prEngine engine(std::move(*graph));
  auto sweep = SweepP(engine, {-1.0, 0.0, 0.5, 1.0, 2.0}, {.beta = 0.0});
  if (!sweep.ok()) {
    std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s  %-22s  %s\n", "p", "Spearman(D2PR, rating)",
              "mean #movies of top-10 actors");
  double best_corr = -2.0, best_p = 0.0;
  for (const SweepPoint& point : *sweep) {
    const double corr =
        SpearmanCorrelation(point.result.scores, significance);
    const std::vector<NodeId> top = TopK(point.result.scores, 10);
    double movies = 0.0;
    for (NodeId actor : top) {
      movies += static_cast<double>(
          world->member_venues[static_cast<size_t>(actor)].size());
    }
    std::printf("%+.1f      %+.4f                %22.1f\n", point.parameter,
                corr, movies / 10.0);
    if (corr > best_corr) {
      best_corr = corr;
      best_p = point.parameter;
    }
  }
  std::printf("(%lld transition builds, %lld warm-started solves)\n",
              static_cast<long long>(engine.stats().transition_builds),
              static_cast<long long>(engine.stats().warm_start_hits));
  std::printf(
      "\nBest correlation at p = %+.1f: penalizing prolific co-star "
      "counts\nsurfaces discriminating actors, exactly the paper's "
      "Example 1.\n",
      best_p);
  return best_p > 0.0 ? 0 : 1;
}
