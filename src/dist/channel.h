// ShardChannel: the transport seam between the DistributedCoordinator
// and one shard worker.
//
// The coordinator speaks strictly call/response (net/shard_wire.h), so
// the seam is one blocking method: send a frame, return the reply. Three
// implementations:
//
//   * SocketShardChannel — a real TCP connection to a ShardServer
//     (dist/shard_server.h), with the per-call deadline armed as a
//     receive timeout (Socket::SetRecvTimeout) re-armed before every
//     receive with the budget REMAINING, so the deadline bounds the
//     whole call. Stale replies — a duplicate or late response whose
//     request id predates the current call — are drained silently,
//     which is what makes coordinator-side retries of idempotent sweep
//     requests safe over a real stream; each stale frame spends the
//     call's one budget rather than granting a fresh one.
//   * InProcessShardChannel — a direct call into a ShardWorker, no
//     sockets and no threads. The distributed test suites run whole
//     shard fleets this way, and a FaultyChannel (tests/dist_test_util.h)
//     wraps it to inject drops, duplicates, truncation, and shard death.
//
// Channel errors use the code vocabulary the coordinator's fault policy
// keys on: DeadlineExceeded is retryable (the request MAY have been
// processed — which is why every shard request is idempotent), IoError /
// Unavailable mean the shard is gone, and anything else is a protocol
// violation that fails the solve.

#ifndef D2PR_DIST_CHANNEL_H_
#define D2PR_DIST_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "net/wire.h"

namespace d2pr {

class ShardWorker;

/// \brief One decoded frame: type + correlation id + raw payload bytes.
/// Payload stays undecoded at this layer so a channel can carry any v2
/// frame (and tests can corrupt bytes below the codec).
struct ShardFrame {
  FrameType type = FrameType::kStatus;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// \brief Blocking call/response transport to one shard worker.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;

  /// Sends `request` and blocks for the reply carrying the same request
  /// id. `deadline_ms` > 0 bounds the WHOLE call — send plus every
  /// receive, including stale-reply drains — with DeadlineExceeded on
  /// expiry; 0 means no deadline (wait forever); a negative value is an
  /// already-spent budget and returns DeadlineExceeded without sending.
  /// Replies with older request ids are drained and discarded, not
  /// errors.
  virtual Result<ShardFrame> Call(const ShardFrame& request,
                                  int64_t deadline_ms) = 0;
};

/// \brief Channel over a real TCP connection to a ShardServer.
class SocketShardChannel : public ShardChannel {
 public:
  /// Connects to `host`:`port` (numeric IPv4).
  static Result<std::unique_ptr<SocketShardChannel>> Connect(
      const std::string& host, uint16_t port);

  Result<ShardFrame> Call(const ShardFrame& request,
                          int64_t deadline_ms) override;

 private:
  explicit SocketShardChannel(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
  /// Last SO_RCVTIMEO value armed on socket_, to skip the setsockopt
  /// when the wanted timeout (remaining budget, or 0 for none) is
  /// already in place. -1 = never armed.
  int64_t armed_deadline_ms_ = -1;
};

/// \brief Channel calling a ShardWorker directly — the fake-transport
/// fleet of the distributed test suites. Each channel is one logical
/// connection (its own session id), so two InProcessShardChannels to the
/// same worker exercise the duplicate-claim rejection exactly as two
/// sockets would. `worker` must outlive the channel.
class InProcessShardChannel : public ShardChannel {
 public:
  explicit InProcessShardChannel(ShardWorker& worker);

  Result<ShardFrame> Call(const ShardFrame& request,
                          int64_t deadline_ms) override;

  uint64_t session_id() const { return session_id_; }

 private:
  ShardWorker& worker_;
  uint64_t session_id_;
};

}  // namespace d2pr

#endif  // D2PR_DIST_CHANNEL_H_
