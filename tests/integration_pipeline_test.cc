// Cross-module pipeline: generate -> serialize -> reload -> rank -> tune,
// exercising the public API the way the examples do.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/d2pr.h"
#include "core/push_ppr.h"
#include "core/sweeps.h"
#include "core/teleport.h"
#include "core/tuner.h"
#include "datagen/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/table_writer.h"
#include "graph/graph_io.h"
#include "linalg/vec_ops.h"
#include "stats/correlation.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

TEST(PipelineTest, GenerateSerializeReloadRank) {
  RegistryOptions options;
  options.scale = 0.2;
  auto data = MakePaperGraph(PaperGraphId::kImdbActorActor, options);
  ASSERT_TRUE(data.ok());

  // Round-trip through both serialization formats.
  const std::string text_path = testing::TempDir() + "/pipeline.txt";
  const std::string bin_path = testing::TempDir() + "/pipeline.bin";
  ASSERT_TRUE(WriteEdgeListText(data->weighted, text_path).ok());
  ASSERT_TRUE(WriteBinary(data->weighted, bin_path).ok());
  auto from_text = ReadEdgeListText(text_path, GraphKind::kUndirected,
                                    /*weighted=*/true,
                                    data->weighted.num_nodes());
  auto from_bin = ReadBinary(bin_path);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  EXPECT_TRUE(*from_text == data->weighted);
  EXPECT_TRUE(*from_bin == data->weighted);

  // Rankings on the reloaded graph equal rankings on the original.
  auto original = ComputeD2pr(data->weighted, {.p = 0.5, .beta = 0.25});
  auto reloaded = ComputeD2pr(*from_bin, {.p = 0.5, .beta = 0.25});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(original->scores, reloaded->scores);
}

TEST(PipelineTest, TunerAgreesWithSweepArgmax) {
  RegistryOptions options;
  options.scale = 0.2;
  auto data = MakePaperGraph(PaperGraphId::kEpinionsCommenterCommenter,
                             options);
  ASSERT_TRUE(data.ok());

  TuneOptions tune_options;
  tune_options.base = BenchOptions();
  auto tuned =
      TuneDecouplingWeight(data->unweighted, data->significance,
                           tune_options);
  ASSERT_TRUE(tuned.ok());

  auto series = CorrelationPSweep(data->unweighted, data->significance,
                                  PaperPGrid(), BenchOptions());
  ASSERT_TRUE(series.ok());
  const CorrelationPoint best = BestPoint(*series);
  // The tuner's refined optimum can only improve on the grid argmax.
  EXPECT_GE(tuned->best_correlation, best.correlation - 1e-9);
  EXPECT_NEAR(tuned->best_p, best.p, 0.51);  // within one coarse cell
}

TEST(PipelineTest, PushPprTopKMatchesPowerIterationTopK) {
  RegistryOptions options;
  options.scale = 0.2;
  auto data = MakePaperGraph(PaperGraphId::kLastfmListenerListener,
                             options);
  ASSERT_TRUE(data.ok());
  const CsrGraph& graph = data->unweighted;

  auto transition = TransitionMatrix::Build(graph, {.p = 0.5});
  ASSERT_TRUE(transition.ok());
  const NodeId seed = graph.num_nodes() / 2;

  auto teleport = SeededTeleport(graph.num_nodes(),
                                 std::vector<NodeId>{seed});
  ASSERT_TRUE(teleport.ok());
  PagerankOptions exact_options;
  exact_options.tolerance = 1e-12;
  exact_options.max_iterations = 500;
  auto exact = SolvePagerank(graph, *transition, *teleport, exact_options);
  ASSERT_TRUE(exact.ok());

  PushOptions push_options;
  push_options.epsilon = 1e-9;
  auto push = ForwardPushPpr(graph, *transition, seed, push_options);
  ASSERT_TRUE(push.ok());

  const std::vector<NodeId> exact_top = TopK(exact->scores, 10);
  const std::vector<NodeId> push_top = TopK(push->scores, 10);
  // Top-10 sets agree (order may differ deep in the tail of ties).
  std::set<NodeId> a(exact_top.begin(), exact_top.end());
  std::set<NodeId> b(push_top.begin(), push_top.end());
  EXPECT_EQ(a, b);
}

TEST(PipelineTest, ResultsArchiveWritable) {
  const std::string dir = testing::TempDir() + "/d2pr_results";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  TextTable table({"graph", "best_p", "corr"});
  table.AddRow({"demo", "0.5", "0.123"});
  ASSERT_TRUE(table.WriteCsv(dir + "/demo.csv").ok());
}

TEST(PipelineTest, WeightedExperimentEndToEnd) {
  RegistryOptions options;
  options.scale = 0.2;
  auto data =
      MakePaperGraph(PaperGraphId::kLastfmArtistArtist, options);
  ASSERT_TRUE(data.ok());
  auto surface = CorrelationBetaPSweep(data->weighted, data->significance,
                                       {0.0, 1.0}, {-1.0, 0.0, 1.0},
                                       BenchOptions());
  ASSERT_TRUE(surface.ok());
  ASSERT_EQ(surface->series.size(), 2u);
  // beta = 1 at any p is the conventional weighted PageRank: all three
  // p-points coincide.
  const auto& conventional = surface->series[1];
  EXPECT_NEAR(conventional[0].correlation, conventional[2].correlation,
              1e-9);
  // beta = 0 must differentiate p.
  const auto& decoupled = surface->series[0];
  EXPECT_NE(decoupled[0].correlation, decoupled[2].correlation);
}

}  // namespace
}  // namespace d2pr
