#include "graph/graph_fingerprint.h"

#include "common/binary_io.h"

namespace d2pr {

uint64_t GraphFingerprint(const CsrGraph& graph) {
  // Chain the sections through one running FNV-1a state; the scalar
  // prefix keeps (kind, weighted) from ever being confused with array
  // bytes of a graph that happens to share the arrays.
  const uint32_t header[2] = {
      static_cast<uint32_t>(graph.kind()),
      graph.weighted() ? 1u : 0u,
  };
  const int64_t counts[2] = {
      static_cast<int64_t>(graph.num_nodes()),
      static_cast<int64_t>(graph.num_arcs()),
  };
  uint64_t hash = Checksum64(header, sizeof(header));
  hash = Checksum64(counts, sizeof(counts), hash);
  hash = Checksum64(graph.offsets().data(),
                    graph.offsets().size() * sizeof(EdgeIndex), hash);
  hash = Checksum64(graph.targets().data(),
                    graph.targets().size() * sizeof(NodeId), hash);
  hash = Checksum64(graph.weights().data(),
                    graph.weights().size() * sizeof(double), hash);
  return hash;
}

}  // namespace d2pr
