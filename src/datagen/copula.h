// Gaussian-copula coupling: draw a vector with a target Spearman
// correlation to a reference vector.
//
// Used by property tests to manufacture significance vectors whose
// degree-correlation is controlled exactly, independent of any generative
// story — the cleanest way to probe how the optimal de-coupling weight p
// tracks the degree-significance relationship (the paper's Figure 5 claim).

#ifndef D2PR_DATAGEN_COPULA_H_
#define D2PR_DATAGEN_COPULA_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace d2pr {

/// \brief Returns y (same length as `reference`) such that
/// Spearman(reference, y) ≈ target_spearman (|target| <= 1).
///
/// Construction: z = normal scores of reference's ranks;
/// y = ρ·z + sqrt(1-ρ²)·ε with ρ = 2·sin(π·target/6), the exact Pearson
/// parameter that yields the requested Spearman under bivariate normality.
/// Sampling noise of order 1/sqrt(n) remains.
Result<std::vector<double>> SpearmanCoupledVector(
    std::span<const double> reference, double target_spearman, Rng* rng);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_COPULA_H_
