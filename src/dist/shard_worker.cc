#include "dist/shard_worker.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "api/rank_request.h"
#include "common/string_util.h"
#include "core/block_solver.h"
#include "core/transition_slices.h"
#include "graph/graph_fingerprint.h"
#include "net/shard_wire.h"

namespace d2pr {

namespace {

/// Bitwise double comparison (NaN-safe: a key is built from finite
/// request fields, but memcmp semantics keep the contract exact).
bool SameBits(double a, double b) {
  uint64_t ab = 0;
  uint64_t bb = 0;
  static_assert(sizeof(ab) == sizeof(a));
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

template <typename T>
int64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.size() * sizeof(T));
}

int64_t ShardBytes(const PartitionShard& shard) {
  return VectorBytes(shard.owned) + VectorBytes(shard.out_offsets) +
         VectorBytes(shard.out_targets) + VectorBytes(shard.out_arc_begin) +
         VectorBytes(shard.in_offsets) + VectorBytes(shard.in_sources) +
         VectorBytes(shard.in_arc_index) + VectorBytes(shard.in_interior) +
         VectorBytes(shard.dangling_owned);
}

}  // namespace

ShardWorker::ShardWorker(ShardWorkerOptions options, uint64_t fingerprint,
                         ResolvedKey key)
    : options_(std::move(options)),
      graph_fingerprint_(fingerprint),
      key_(key) {}

Result<std::unique_ptr<ShardWorker>> ShardWorker::Create(
    const CsrGraph& graph, const ShardWorkerOptions& options) {
  if (options.shard_id >= options.num_shards) {
    return Status::InvalidArgument(
        StrCat("shard_id ", options.shard_id, " not below num_shards ",
               options.num_shards));
  }

  PartitionOptions popts;
  popts.scheme = options.scheme;
  popts.num_shards = options.num_shards;
  // The pull-side block sweep never reads the forward slice.
  popts.build_out_csr = false;
  Result<GraphPartition> partition = GraphPartition::Build(graph, popts);
  if (!partition.ok()) return partition.status();

  TransitionSlices slices;
  D2PR_ASSIGN_OR_RETURN(
      slices, BuildTransitionSlicesLocal(graph, *partition, options.config));

  // Normalize the transition key exactly as D2prEngine does before cache
  // lookups, so the coordinator's handshake key (normalized the same
  // way) compares bitwise.
  ResolvedKey key;
  key.p = options.config.p;
  key.beta = graph.weighted() ? options.config.beta : 0.0;
  key.metric = ResolveMetric(graph, options.config.metric);

  auto worker = std::unique_ptr<ShardWorker>(
      new ShardWorker(options, GraphFingerprint(graph), key));
  worker->num_nodes_ = static_cast<uint64_t>(graph.num_nodes());
  worker->num_arcs_ = static_cast<uint64_t>(graph.num_arcs());
  worker->shard_ = partition->shard(options.shard_id);
  worker->probs_ = std::move(slices.in_probs[options.shard_id]);
  worker->slice_ready_ = true;
  // The whole graph's CSR bytes: what this path forces every shard
  // process to ingest (the cut path's build_input_bytes is its cut).
  worker->build_input_bytes_ =
      static_cast<int64_t>((graph.num_nodes() + 1) * sizeof(EdgeIndex)) +
      static_cast<int64_t>(graph.num_arcs()) *
          static_cast<int64_t>(sizeof(NodeId) +
                               (graph.weighted() ? sizeof(double) : 0));
  worker->InitDerivedIndexes(worker->shard_);
  return worker;
}

Result<std::unique_ptr<ShardWorker>> ShardWorker::CreateFromCutFile(
    const std::string& path, const TransitionConfig& config) {
  Result<ShardCut> loaded = LoadShardCut(path);
  if (!loaded.ok()) return loaded.status();
  auto cut = std::make_unique<ShardCut>(std::move(*loaded));

  // Fail a bad config at create time, not at the first solve.
  if (Status s = ValidateTransitionConfig(cut->meta.weighted, config);
      !s.ok()) {
    return s;
  }

  ShardWorkerOptions options;
  options.shard_id = cut->meta.shard_id;
  options.num_shards = cut->meta.num_shards;
  options.scheme = cut->meta.scheme;
  options.config = config;

  // Same normalization as the graph path, resolved from the cut's
  // weightedness — bitwise the key Create() would compute for the
  // source graph.
  ResolvedKey key;
  key.p = config.p;
  key.beta = cut->meta.weighted ? config.beta : 0.0;
  key.metric = ResolveMetric(cut->meta.weighted, config.metric);

  auto worker = std::unique_ptr<ShardWorker>(
      new ShardWorker(options, cut->meta.graph_fingerprint, key));
  worker->num_nodes_ = static_cast<uint64_t>(cut->meta.num_nodes);
  worker->num_arcs_ = static_cast<uint64_t>(cut->meta.num_arcs);
  worker->build_input_bytes_ = cut->payload_bytes();
  worker->InitDerivedIndexes(cut->shard);
  // The cut stays intact (ghost rows + weights next to the shard) until
  // the first solve begin ships the metric vector and the slice builds;
  // until then live_shard() reads through it.
  worker->cut_ = std::move(cut);
  return worker;
}

void ShardWorker::InitDerivedIndexes(const PartitionShard& shard) {
  owned_dangling_.assign(shard.owned.size(), 0);
  for (NodeId v : shard.dangling_owned) {
    const auto it =
        std::lower_bound(shard.owned.begin(), shard.owned.end(), v);
    owned_dangling_[static_cast<size_t>(it - shard.owned.begin())] = 1;
  }

  // Distinct boundary sources, ascending — the published order of every
  // sweep request's boundary vector.
  std::vector<NodeId> boundary;
  for (size_t idx = 0; idx < shard.in_sources.size(); ++idx) {
    if (!shard.in_interior[idx]) boundary.push_back(shard.in_sources[idx]);
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  boundary_sources_ = std::move(boundary);

  // Slot of each in-CSR position in the [owned | boundary] scratch.
  src_slot_.resize(shard.in_sources.size());
  for (size_t idx = 0; idx < shard.in_sources.size(); ++idx) {
    const NodeId src = shard.in_sources[idx];
    if (shard.in_interior[idx]) {
      const auto it =
          std::lower_bound(shard.owned.begin(), shard.owned.end(), src);
      src_slot_[idx] = static_cast<size_t>(it - shard.owned.begin());
    } else {
      const auto it = std::lower_bound(boundary_sources_.begin(),
                                       boundary_sources_.end(), src);
      src_slot_[idx] = shard.owned.size() +
                       static_cast<size_t>(it - boundary_sources_.begin());
    }
  }
}

ShardFrame ShardWorker::StatusReply(uint64_t request_id,
                                    const Status& status) const {
  ShardFrame reply;
  reply.type = FrameType::kStatus;
  reply.request_id = request_id;
  reply.payload = EncodeStatusPayload(status);
  return reply;
}

Result<ShardFrame> ShardWorker::Handle(const ShardFrame& request,
                                       uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (request.type) {
    case FrameType::kShardHandshake:
      return HandleHandshake(request, session_id);
    case FrameType::kSolveBegin:
      return HandleSolveBegin(request, session_id);
    case FrameType::kSweepRequest:
      return HandleSweep(request, session_id);
    case FrameType::kSolveEnd:
      return HandleSolveEnd(request, session_id);
    default:
      // Not part of the shard vocabulary at all — the stream is confused
      // about who it is talking to; the connection must close.
      return Status::InvalidArgument(
          StrCat("shard worker received frame type ",
                 static_cast<int>(request.type)));
  }
}

ShardFrame ShardWorker::HandleHandshake(const ShardFrame& request,
                                        uint64_t session_id) {
  Result<ShardHandshake> decoded = DecodeShardHandshake(request.payload);
  if (!decoded.ok()) return StatusReply(request.request_id, decoded.status());
  const ShardHandshake& h = *decoded;

  // Distinct rejection codes, checked most-specific first (see header).
  if (h.shard_id != options_.shard_id) {
    return StatusReply(
        request.request_id,
        Status::NotFound(StrCat("this worker hosts shard ", options_.shard_id,
                                ", not shard ", h.shard_id)));
  }
  if (h.num_shards != options_.num_shards) {
    return StatusReply(
        request.request_id,
        Status::OutOfRange(StrCat("worker partitioned for ",
                                  options_.num_shards, " shards, handshake ",
                                  "declares ", h.num_shards)));
  }
  if (h.scheme != options_.scheme) {
    return StatusReply(request.request_id,
                       Status::FailedPrecondition(StrCat(
                           "worker partitioned with scheme ",
                           PartitionSchemeName(options_.scheme),
                           ", handshake declares ",
                           PartitionSchemeName(h.scheme))));
  }
  if (h.slice_build != SliceBuild::kSubgraph) {
    return StatusReply(request.request_id,
                       Status::FailedPrecondition(
                           "shard workers build slices shard-locally "
                           "(SliceBuild::kSubgraph only)"));
  }
  if (h.graph_fingerprint != graph_fingerprint_) {
    return StatusReply(
        request.request_id,
        Status::FailedPrecondition(StrCat(
            "graph fingerprint mismatch: worker holds ", graph_fingerprint_,
            ", handshake declares ", h.graph_fingerprint)));
  }
  if (!SameBits(h.p, key_.p) || !SameBits(h.beta, key_.beta) ||
      h.metric != key_.metric) {
    // The comparison is bitwise, so the report must be too: default
    // stream precision prints 0.1 and 0.1+1ulp as the same "0.1",
    // which made real mismatches read as absurd self-contradictions.
    return StatusReply(
        request.request_id,
        Status::InvalidArgument(StrCat(
            "transition key mismatch: worker resolved (p=",
            FormatExactDouble(key_.p), ", beta=", FormatExactDouble(key_.beta),
            ", metric=", static_cast<int>(key_.metric),
            "), handshake declares (p=", FormatExactDouble(h.p),
            ", beta=", FormatExactDouble(h.beta),
            ", metric=", static_cast<int>(h.metric), ")")));
  }
  if (claimed_by_ != 0 && claimed_by_ != session_id) {
    return StatusReply(
        request.request_id,
        Status::AlreadyExists(StrCat("shard ", options_.shard_id,
                                     " already claimed by a live session")));
  }
  claimed_by_ = session_id;

  const PartitionShard& shard = live_shard();
  ShardHandshakeAck ack;
  ack.num_nodes = num_nodes_;
  ack.num_arcs = num_arcs_;
  ack.num_owned = shard.owned.size();
  ack.boundary_in_arcs = static_cast<uint64_t>(shard.boundary_in_arcs);
  ack.dangling_owned = shard.dangling_owned;
  ack.boundary_sources = boundary_sources_;
  // A cut-loaded worker asks for the metric vector until its first
  // slice build; a whole-graph worker never does.
  ack.needs_metric_values = !slice_ready_;

  ShardFrame reply;
  reply.type = FrameType::kShardHandshakeAck;
  reply.request_id = request.request_id;
  reply.payload = EncodeShardHandshakeAck(ack);
  return reply;
}

ShardFrame ShardWorker::HandleSolveBegin(const ShardFrame& request,
                                         uint64_t session_id) {
  if (claimed_by_ != session_id) {
    return StatusReply(request.request_id,
                       Status::FailedPrecondition(
                           "solve begin from a session that never "
                           "completed a handshake"));
  }
  Result<ShardSolveBegin> decoded = DecodeShardSolveBegin(request.payload);
  if (!decoded.ok()) return StatusReply(request.request_id, decoded.status());
  ShardSolveBegin begin = std::move(*decoded);

  if (begin.initial.size() != live_shard().owned.size()) {
    return StatusReply(
        request.request_id,
        Status::InvalidArgument(StrCat(
            "solve begin carries ", begin.initial.size(),
            " owned values, shard owns ", live_shard().owned.size(),
            " nodes")));
  }
  if (begin.method == static_cast<uint32_t>(SolverMethod::kGaussSeidel)) {
    if (Status s = ValidateBlockGaussSeidelPolicy(begin.dangling); !s.ok()) {
      return StatusReply(request.request_id, s);
    }
  }

  if (!slice_ready_) {
    // Cut-loaded worker, first solve: build the slice from the cut plus
    // the broadcast metric vector the ack asked for. Wrong-sized (or
    // otherwise bad) vectors reject from BuildShardSliceFromCut with
    // its own message.
    if (begin.metric_values.empty()) {
      return StatusReply(
          request.request_id,
          Status::FailedPrecondition(
              "worker loaded from a cut file has no transition slice yet; "
              "solve begin must carry the global metric vector the "
              "handshake ack requested (needs_metric_values)"));
    }
    Result<std::vector<double>> slice =
        BuildShardSliceFromCut(*cut_, begin.metric_values, options_.config);
    if (!slice.ok()) return StatusReply(request.request_id, slice.status());
    probs_ = std::move(*slice);
    // The cut has served its purpose: keep the shard, drop the ghost
    // rows, weights, and the forward slice the sweeps never read.
    shard_ = std::move(cut_->shard);
    cut_.reset();
    shard_.out_offsets = std::vector<EdgeIndex>();
    shard_.out_targets = std::vector<NodeId>();
    shard_.out_arc_begin = std::vector<EdgeIndex>();
    slice_ready_ = true;
  }

  solve_active_ = true;
  solve_id_ = begin.solve_id;
  method_ = begin.method;
  dangling_policy_ = begin.dangling;
  alpha_ = begin.alpha;
  teleport_ = std::move(begin.teleport);
  vals_.assign(shard_.owned.size() + boundary_sources_.size(), 0.0);
  std::copy(begin.initial.begin(), begin.initial.end(), vals_.begin());
  next_.assign(shard_.owned.size(), 0.0);
  last_sweep_ = 0;
  cached_reply_.clear();

  return StatusReply(request.request_id, Status::OK());
}

ShardFrame ShardWorker::HandleSweep(const ShardFrame& request,
                                    uint64_t session_id) {
  if (claimed_by_ != session_id) {
    return StatusReply(request.request_id,
                       Status::FailedPrecondition(
                           "sweep from a session that never completed a "
                           "handshake"));
  }
  Result<ShardSweepRequest> decoded = DecodeShardSweepRequest(request.payload);
  if (!decoded.ok()) return StatusReply(request.request_id, decoded.status());
  const ShardSweepRequest& sweep = *decoded;

  if (!solve_active_ || sweep.solve_id != solve_id_) {
    return StatusReply(request.request_id,
                       Status::FailedPrecondition(StrCat(
                           "sweep for unknown solve ", sweep.solve_id)));
  }
  if (sweep.boundary.size() != boundary_sources_.size()) {
    return StatusReply(
        request.request_id,
        Status::InvalidArgument(StrCat(
            "sweep carries ", sweep.boundary.size(), " boundary values, ",
            "shard pulls ", boundary_sources_.size(), " sources")));
  }
  if (sweep.sweep == last_sweep_ && !cached_reply_.empty()) {
    // Idempotent retry: the coordinator (or a duplicating transport)
    // re-sent a sweep that already executed. Resend the cached reply —
    // re-executing would double-advance the iterate.
    ShardFrame reply;
    reply.type = FrameType::kSweepResponse;
    reply.request_id = request.request_id;
    reply.payload = cached_reply_;
    return reply;
  }
  if (sweep.sweep != last_sweep_ + 1) {
    return StatusReply(
        request.request_id,
        Status::FailedPrecondition(StrCat("sweep ", sweep.sweep,
                                          " out of order (last executed ",
                                          last_sweep_, ")")));
  }

  ExecuteSweep(sweep.dangling_mass, sweep.has_rescale, sweep.rescale,
               sweep.boundary);
  last_sweep_ = sweep.sweep;
  ++sweeps_executed_;

  ShardSweepResponse response;
  response.solve_id = solve_id_;
  response.sweep = last_sweep_;
  response.owned.assign(vals_.begin(),
                        vals_.begin() + static_cast<long>(next_.size()));
  // Advisory partials: the shard's own fold grouping (telemetry; the
  // coordinator recomputes the canonical global folds).
  response.dangling_partial = 0.0;
  for (size_t k = 0; k < owned_dangling_.size(); ++k) {
    if (owned_dangling_[k]) response.dangling_partial += vals_[k];
  }
  response.residual_partial = 0.0;
  for (size_t k = 0; k < next_.size(); ++k) {
    response.residual_partial += std::abs(vals_[k] - next_[k]);
  }
  cached_reply_ = EncodeShardSweepResponse(response);

  ShardFrame reply;
  reply.type = FrameType::kSweepResponse;
  reply.request_id = request.request_id;
  reply.payload = cached_reply_;
  return reply;
}

void ShardWorker::ExecuteSweep(double dangling_mass, bool has_rescale,
                               double rescale,
                               const std::vector<double>& boundary) {
  const size_t num_owned = shard_.owned.size();
  if (has_rescale) {
    // Replay the coordinator's NormalizeL1 on the retained slice:
    // Scale(1.0/norm) multiplies every element by the same scalar, so
    // multiplying the slice is bitwise the slice of the multiplied
    // vector.
    for (size_t k = 0; k < num_owned; ++k) vals_[k] *= rescale;
  }
  std::copy(boundary.begin(), boundary.end(), vals_.begin() + num_owned);

  // `next_` keeps the pre-sweep owned slice afterwards (for the advisory
  // residual partial); during a power sweep it holds the new values.
  const double* slice = probs_.data();
  if (method_ == static_cast<uint32_t>(SolverMethod::kPower)) {
    // Line-for-line the power sweep of SolvePagerankPartitioned's sliced
    // overload, with current[src] read through the slot map.
    for (size_t k = 0; k < num_owned; ++k) {
      double value = 0.0;
      const EdgeIndex begin = shard_.in_offsets[k];
      const EdgeIndex end = shard_.in_offsets[k + 1];
      for (EdgeIndex idx = begin; idx < end; ++idx) {
        value += vals_[src_slot_[static_cast<size_t>(idx)]] *
                 slice[static_cast<size_t>(idx)];
      }
      switch (dangling_policy_) {
        case DanglingPolicy::kTeleport:
          if (dangling_mass > 0.0) {
            value += dangling_mass * teleport_[k];
          }
          break;
        case DanglingPolicy::kSelfLoop:
          if (owned_dangling_[k]) {
            value += vals_[k];
          }
          break;
        case DanglingPolicy::kRenormalize:
          break;
      }
      next_[k] = alpha_ * value + (1.0 - alpha_) * teleport_[k];
    }
    // Swap the new slice into the retained prefix; next_ now holds the
    // previous values for the residual partial.
    for (size_t k = 0; k < num_owned; ++k) std::swap(vals_[k], next_[k]);
    return;
  }

  // Block Gauss-Seidel: in-place on the owned prefix — interior sources
  // read live (possibly already-updated) slots, boundary slots hold the
  // coordinator's frozen exchange copy. Same arithmetic as
  // SolveGaussSeidelPartitioned's sliced overload.
  std::copy(vals_.begin(), vals_.begin() + static_cast<long>(num_owned),
            next_.begin());
  for (size_t k = 0; k < num_owned; ++k) {
    double incoming = 0.0;
    const EdgeIndex begin = shard_.in_offsets[k];
    const EdgeIndex end = shard_.in_offsets[k + 1];
    for (EdgeIndex idx = begin; idx < end; ++idx) {
      incoming += slice[static_cast<size_t>(idx)] *
                  vals_[src_slot_[static_cast<size_t>(idx)]];
    }
    double value = alpha_ * incoming + (1.0 - alpha_) * teleport_[k];
    switch (dangling_policy_) {
      case DanglingPolicy::kTeleport:
        value += alpha_ * dangling_mass * teleport_[k];
        break;
      case DanglingPolicy::kSelfLoop:
        if (owned_dangling_[k]) {
          value /= (1.0 - alpha_);
        }
        break;
      case DanglingPolicy::kRenormalize:
        break;
    }
    vals_[k] = value;
  }
}

ShardFrame ShardWorker::HandleSolveEnd(const ShardFrame& request,
                                       uint64_t session_id) {
  if (claimed_by_ != session_id) {
    return StatusReply(request.request_id,
                       Status::FailedPrecondition(
                           "solve end from a session that never completed "
                           "a handshake"));
  }
  Result<ShardSolveEnd> decoded = DecodeShardSolveEnd(request.payload);
  if (!decoded.ok()) return StatusReply(request.request_id, decoded.status());
  if (solve_active_ && decoded->solve_id == solve_id_) {
    solve_active_ = false;
    teleport_.clear();
    vals_.clear();
    next_.clear();
    cached_reply_.clear();
  }
  // Ending an unknown (or already-ended) solve is OK — the coordinator
  // may retry a lost end frame.
  return StatusReply(request.request_id, Status::OK());
}

void ShardWorker::CloseSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (claimed_by_ != session_id) return;
  claimed_by_ = 0;
  solve_active_ = false;
  teleport_.clear();
  vals_.clear();
  next_.clear();
  cached_reply_.clear();
}

int64_t ShardWorker::sweeps_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_executed_;
}

int64_t ShardWorker::resident_graph_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes = ShardBytes(live_shard()) + VectorBytes(boundary_sources_) +
                  VectorBytes(src_slot_) + VectorBytes(owned_dangling_);
  if (cut_) {
    bytes += VectorBytes(cut_->boundary_sources) +
             VectorBytes(cut_->ghost_offsets) +
             VectorBytes(cut_->ghost_targets) + VectorBytes(cut_->out_weights) +
             VectorBytes(cut_->in_weights) + VectorBytes(cut_->ghost_weights);
  }
  return bytes;
}

}  // namespace d2pr
