#include "d2pr_net_flags.h"

#include <set>
#include <string>

#include "common/string_util.h"

namespace d2pr {
namespace {

Status CheckKnown(const Flags& flags, const std::set<std::string>& known) {
  for (const std::string& name : flags.FlagNames()) {
    if (!known.contains(name)) {
      return Status::InvalidArgument(StrCat("unknown flag --", name));
    }
  }
  if (!flags.positional().empty()) {
    return Status::InvalidArgument(
        StrCat("unexpected argument '", flags.positional().front(), "'"));
  }
  return Status::OK();
}

/// --port: the server may bind 0 (ephemeral); the loadgen must aim at a
/// real port, so its minimum is 1.
Status CheckPort(const Flags& flags, int64_t minimum) {
  const auto port = flags.GetInt("port", minimum);
  if (!port.ok()) return port.status();
  if (*port < minimum || *port > 65535) {
    return Status::InvalidArgument(
        StrCat("--port must lie in [", minimum, ", 65535]"));
  }
  return Status::OK();
}

Status CheckDeadline(const Flags& flags) {
  const auto deadline = flags.GetInt("deadline-ms", 1);
  if (!deadline.ok()) return deadline.status();
  if (*deadline < 1) {
    return Status::InvalidArgument(
        "--deadline-ms must be >= 1 (omit the flag for no deadline; a "
        "zero deadline would expire every request unserved)");
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Graph-source rules shared by the server (both roles) and the cluster
/// launcher: --graph excludes the synthetic knobs, --directed/--weighted
/// require --graph.
Status CheckGraphFlags(const Flags& flags) {
  const auto nodes = flags.GetInt("nodes", 10000);
  const auto edges_per_node = flags.GetInt("edges-per-node", 8);
  const auto gen_seed = flags.GetInt("gen-seed", 42);
  const auto directed = flags.GetBool("directed", false);
  const auto weighted = flags.GetBool("weighted", false);
  if (!nodes.ok() || !edges_per_node.ok() || !gen_seed.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (!directed.ok() || !weighted.ok()) {
    return Status::InvalidArgument("bad boolean flag");
  }
  if (*nodes < 2) return Status::InvalidArgument("--nodes must be >= 2");
  if (*edges_per_node < 1) {
    return Status::InvalidArgument("--edges-per-node must be >= 1");
  }
  if (flags.Has("graph")) {
    if (flags.GetString("graph").empty()) {
      return Status::InvalidArgument("--graph requires a file path");
    }
    if (flags.Has("nodes") || flags.Has("edges-per-node") ||
        flags.Has("gen-seed")) {
      return Status::InvalidArgument(
          "--graph excludes the synthetic-graph flags "
          "(--nodes/--edges-per-node/--gen-seed)");
    }
  } else if (flags.Has("directed") || flags.Has("weighted")) {
    return Status::InvalidArgument(
        "--directed/--weighted only apply to --graph files (the "
        "synthetic generator fixes its own graph kind)");
  }
  return Status::OK();
}

/// Transition-model knobs shared by the shard role and the cluster
/// launcher (the solving tiers' vocabulary: p finite, beta in [0, 1]).
Status CheckTransitionFlags(const Flags& flags) {
  const auto p = flags.GetDouble("p", 0.5);
  const auto beta = flags.GetDouble("beta", 0.0);
  if (!p.ok() || !beta.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (*beta < 0.0 || *beta > 1.0) {
    return Status::InvalidArgument("--beta must lie in [0, 1]");
  }
  return Status::OK();
}

Status CheckScheme(const Flags& flags) {
  const std::string scheme = flags.GetString("scheme");
  if (!scheme.empty() && scheme != "range" && scheme != "hash") {
    return Status::InvalidArgument(
        StrCat("unknown --scheme '", scheme, "' (expected range or hash)"));
  }
  return Status::OK();
}

}  // namespace

Status ValidateServerFlags(const Flags& flags) {
  static const std::set<std::string> kKnown = {
      "port",    "threads",        "shards", "route",    "max-queue",
      "coalesce", "graph",         "directed", "weighted",
      "nodes",   "edges-per-node", "gen-seed",
      "shard-role", "shard-id",    "shard-count", "scheme", "p", "beta",
      "shard-file",
  };
  D2PR_RETURN_NOT_OK(CheckKnown(flags, kKnown));
  D2PR_RETURN_NOT_OK(CheckPort(flags, /*minimum=*/0));

  const auto shard_role = flags.GetBool("shard-role", false);
  if (!shard_role.ok()) return Status::InvalidArgument("bad boolean flag");
  if (*shard_role) {
    // Shard role: one partition shard behind the v2 wire. The serving
    // policy flags belong to the front-door role only.
    for (const char* excluded :
         {"shards", "route", "max-queue", "coalesce", "threads"}) {
      if (flags.Has(excluded)) {
        return Status::InvalidArgument(
            StrCat("--", excluded, " does not apply to --shard-role"));
      }
    }
    if (flags.Has("shard-file")) {
      // Pre-cut path: shard id, count, scheme, and graph identity all
      // come from the cut file's validated metadata — passing any of
      // them here could only contradict the file, so they are rejected
      // rather than silently ignored. Only the transition model stays
      // the command line's to choose.
      if (flags.GetString("shard-file").empty()) {
        return Status::InvalidArgument("--shard-file requires a file path");
      }
      for (const char* excluded :
           {"shard-id", "shard-count", "scheme", "graph", "directed",
            "weighted", "nodes", "edges-per-node", "gen-seed"}) {
        if (flags.Has(excluded)) {
          return Status::InvalidArgument(StrCat(
              "--", excluded,
              " does not apply to --shard-file (the cut file's metadata "
              "fixes the shard topology and the graph)"));
        }
      }
      return CheckTransitionFlags(flags);
    }
    const auto shard_id = flags.GetInt("shard-id", 0);
    const auto shard_count = flags.GetInt("shard-count", 1);
    if (!shard_id.ok() || !shard_count.ok()) {
      return Status::InvalidArgument("bad numeric flag");
    }
    if (*shard_count < 1) {
      return Status::InvalidArgument("--shard-count must be >= 1");
    }
    if (*shard_id < 0 || *shard_id >= *shard_count) {
      return Status::InvalidArgument(
          "--shard-id must lie in [0, shard-count)");
    }
    D2PR_RETURN_NOT_OK(CheckScheme(flags));
    D2PR_RETURN_NOT_OK(CheckTransitionFlags(flags));
    return CheckGraphFlags(flags);
  }
  for (const char* shard_only :
       {"shard-id", "shard-count", "scheme", "p", "beta", "shard-file"}) {
    if (flags.Has(shard_only)) {
      return Status::InvalidArgument(
          StrCat("--", shard_only, " requires --shard-role"));
    }
  }

  const auto threads = flags.GetInt("threads", 4);
  const auto shards = flags.GetInt("shards", 1);
  const auto max_queue = flags.GetInt("max-queue", 256);
  const auto nodes = flags.GetInt("nodes", 10000);
  const auto edges_per_node = flags.GetInt("edges-per-node", 8);
  const auto gen_seed = flags.GetInt("gen-seed", 42);
  const auto coalesce = flags.GetBool("coalesce", true);
  const auto directed = flags.GetBool("directed", false);
  const auto weighted = flags.GetBool("weighted", false);
  if (!threads.ok() || !shards.ok() || !max_queue.ok() || !nodes.ok() ||
      !edges_per_node.ok() || !gen_seed.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (!coalesce.ok() || !directed.ok() || !weighted.ok()) {
    return Status::InvalidArgument("bad boolean flag");
  }
  if (*threads < 1) return Status::InvalidArgument("--threads must be >= 1");
  if (*shards < 1) return Status::InvalidArgument("--shards must be >= 1");
  if (*max_queue < 1) {
    return Status::InvalidArgument(
        "--max-queue must be >= 1 (a zero bound would shed every request)");
  }
  if (*nodes < 2) return Status::InvalidArgument("--nodes must be >= 2");
  if (*edges_per_node < 1) {
    return Status::InvalidArgument("--edges-per-node must be >= 1");
  }

  const std::string route = flags.GetString("route");
  if (!route.empty() && route != "replicated" && route != "least-loaded" &&
      route != "partitioned" && route != "subgraph") {
    return Status::InvalidArgument(
        StrCat("unknown --route '", route,
               "' (expected replicated, least-loaded, partitioned, or "
               "subgraph)"));
  }
  if (flags.Has("route") && *shards < 2) {
    return Status::InvalidArgument("--route requires --shards >= 2");
  }
  if (flags.Has("graph")) {
    if (flags.GetString("graph").empty()) {
      return Status::InvalidArgument("--graph requires a file path");
    }
    if (flags.Has("nodes") || flags.Has("edges-per-node") ||
        flags.Has("gen-seed")) {
      return Status::InvalidArgument(
          "--graph excludes the synthetic-graph flags "
          "(--nodes/--edges-per-node/--gen-seed)");
    }
  } else if (flags.Has("directed") || flags.Has("weighted")) {
    return Status::InvalidArgument(
        "--directed/--weighted only apply to --graph files (the "
        "synthetic generator fixes its own graph kind)");
  }
  return Status::OK();
}

Status ValidateLoadGenFlags(const Flags& flags) {
  static const std::set<std::string> kKnown = {
      "port", "host",   "connections",     "requests", "zipf-s",
      "zipf-n", "global-fraction", "deadline-ms", "seed",
      "p",    "alpha",  "method", "top-k",
  };
  D2PR_RETURN_NOT_OK(CheckKnown(flags, kKnown));
  if (!flags.Has("port")) {
    return Status::InvalidArgument("--port=N is required (no server to find)");
  }
  D2PR_RETURN_NOT_OK(CheckPort(flags, /*minimum=*/1));
  if (flags.Has("deadline-ms")) D2PR_RETURN_NOT_OK(CheckDeadline(flags));

  const auto connections = flags.GetInt("connections", 4);
  const auto requests = flags.GetInt("requests", 100);
  const auto zipf_s = flags.GetDouble("zipf-s", 1.1);
  const auto zipf_n = flags.GetInt("zipf-n", 0);
  const auto global_fraction = flags.GetDouble("global-fraction", 0.0);
  const auto seed = flags.GetInt("seed", 1);
  const auto p = flags.GetDouble("p", 0.5);
  const auto alpha = flags.GetDouble("alpha", 0.85);
  const auto top_k = flags.GetInt("top-k", 0);
  if (!connections.ok() || !requests.ok() || !zipf_s.ok() || !zipf_n.ok() ||
      !global_fraction.ok() || !seed.ok() || !p.ok() || !alpha.ok() ||
      !top_k.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (flags.Has("top-k") && *top_k < 1) {
    return Status::InvalidArgument("--top-k must be >= 1");
  }
  if (*connections < 1) {
    return Status::InvalidArgument("--connections must be >= 1");
  }
  if (*requests < 1) return Status::InvalidArgument("--requests must be >= 1");
  if (*zipf_s <= 0.0 || *zipf_s > kMaxZipfExponent) {
    return Status::InvalidArgument(
        StrCat("--zipf-s must lie in (0, ", kMaxZipfExponent,
               "] (the Zipf exponent of the query-popularity mix)"));
  }
  if (*zipf_n < 0) return Status::InvalidArgument("--zipf-n must be >= 0");
  if (*global_fraction < 0.0 || *global_fraction > 1.0) {
    return Status::InvalidArgument("--global-fraction must lie in [0, 1]");
  }
  if (*alpha < 0.0 || *alpha >= 1.0) {
    return Status::InvalidArgument("--alpha must lie in [0, 1)");
  }
  const std::string method = flags.GetString("method");
  if (!method.empty() && method != "power" && method != "gauss-seidel" &&
      method != "forward-push") {
    return Status::InvalidArgument(StrCat("unknown --method '", method, "'"));
  }
  return Status::OK();
}

Status ValidateClusterFlags(const Flags& flags) {
  static const std::set<std::string> kKnown = {
      "shard-ports", "host",     "scheme",  "method",    "dangling",
      "p",           "beta",     "alpha",   "tolerance", "max-iterations",
      "deadline-ms", "retries",  "compare", "graph",     "directed",
      "weighted",    "nodes",    "edges-per-node",       "gen-seed",
      "cut-dir",
  };
  D2PR_RETURN_NOT_OK(CheckKnown(flags, kKnown));
  if (!flags.Has("shard-ports")) {
    return Status::InvalidArgument(
        "--shard-ports=P1,P2,... is required (one port per shard, "
        "shard id = list position)");
  }
  if (flags.GetString("shard-ports").empty()) {
    return Status::InvalidArgument("--shard-ports must list at least one port");
  }
  if (flags.Has("cut-dir") && flags.GetString("cut-dir").empty()) {
    return Status::InvalidArgument("--cut-dir requires a directory path");
  }
  D2PR_RETURN_NOT_OK(CheckScheme(flags));
  D2PR_RETURN_NOT_OK(CheckTransitionFlags(flags));
  D2PR_RETURN_NOT_OK(CheckGraphFlags(flags));
  if (flags.Has("deadline-ms")) D2PR_RETURN_NOT_OK(CheckDeadline(flags));

  const auto alpha = flags.GetDouble("alpha", 0.85);
  const auto tolerance = flags.GetDouble("tolerance", 1e-10);
  const auto max_iterations = flags.GetInt("max-iterations", 200);
  const auto retries = flags.GetInt("retries", 2);
  const auto compare = flags.GetBool("compare", true);
  if (!alpha.ok() || !tolerance.ok() || !max_iterations.ok() ||
      !retries.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (!compare.ok()) return Status::InvalidArgument("bad boolean flag");
  if (*alpha < 0.0 || *alpha >= 1.0) {
    return Status::InvalidArgument("--alpha must lie in [0, 1)");
  }
  if (*tolerance <= 0.0) {
    return Status::InvalidArgument("--tolerance must be > 0");
  }
  if (*max_iterations < 1) {
    return Status::InvalidArgument("--max-iterations must be >= 1");
  }
  if (*retries < 0) return Status::InvalidArgument("--retries must be >= 0");

  const std::string method = flags.GetString("method");
  if (!method.empty() && method != "power" && method != "gauss-seidel") {
    return Status::InvalidArgument(
        StrCat("unknown --method '", method,
               "' (the distributed block solve supports power and "
               "gauss-seidel)"));
  }
  const std::string dangling = flags.GetString("dangling");
  if (!dangling.empty() && dangling != "teleport" &&
      dangling != "self-loop" && dangling != "renormalize") {
    return Status::InvalidArgument(
        StrCat("unknown --dangling '", dangling,
               "' (expected teleport, self-loop, or renormalize)"));
  }
  if (dangling == "renormalize" && method == "gauss-seidel") {
    return Status::InvalidArgument(
        "--dangling=renormalize is incompatible with "
        "--method=gauss-seidel (the block Gauss-Seidel fixed point would "
        "depend on sweep order)");
  }
  return Status::OK();
}

Status ValidatePartitionCutFlags(const Flags& flags) {
  static const std::set<std::string> kKnown = {
      "out-dir", "shards", "scheme",         "graph",    "directed",
      "weighted", "nodes", "edges-per-node", "gen-seed",
  };
  D2PR_RETURN_NOT_OK(CheckKnown(flags, kKnown));
  if (!flags.Has("out-dir") || flags.GetString("out-dir").empty()) {
    return Status::InvalidArgument(
        "--out-dir=DIR is required (where the cut files go)");
  }
  const auto shards = flags.GetInt("shards", 2);
  if (!shards.ok()) return Status::InvalidArgument("bad numeric flag");
  if (*shards < 1) return Status::InvalidArgument("--shards must be >= 1");
  D2PR_RETURN_NOT_OK(CheckScheme(flags));
  return CheckGraphFlags(flags);
}

}  // namespace d2pr
