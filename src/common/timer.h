// Wall-clock timing utilities for benchmarks and progress reporting.

#ifndef D2PR_COMMON_TIMER_H_
#define D2PR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace d2pr {

/// \brief Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in whole microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace d2pr

#endif  // D2PR_COMMON_TIMER_H_
