// Descriptive statistics for data graphs (the paper's Table 3).

#ifndef D2PR_GRAPH_GRAPH_STATS_H_
#define D2PR_GRAPH_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace d2pr {

/// \brief The per-graph statistics reported in Table 3 of the paper, plus a
/// few extras useful for sanity checks.
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeIndex num_edges = 0;  ///< Logical edges (see CsrGraph::num_edges).
  EdgeIndex num_arcs = 0;
  double avg_degree = 0.0;              ///< Mean out-degree.
  double stddev_degree = 0.0;           ///< Population std-dev of out-degree.
  /// Median over nodes of the std-dev of their neighbors' degrees. The paper
  /// uses this to explain the stability of the correlation curves for p < 0
  /// (§4.3.2 / §4.3.3): a high value means most nodes see one dominant
  /// high-degree neighbor.
  double median_neighbor_degree_stddev = 0.0;
  EdgeIndex min_degree = 0;
  EdgeIndex max_degree = 0;
  NodeId num_isolated = 0;  ///< Nodes with no incident arcs at all.
  NodeId num_dangling = 0;  ///< Nodes with no outgoing arcs.
};

/// \brief Computes GraphStats in one pass over the graph (plus one pass per
/// node's neighborhood for the neighbor-degree spread).
GraphStats ComputeGraphStats(const CsrGraph& graph);

/// \brief Renders stats as one aligned text row (see Table 3 repro bench).
std::string FormatStatsRow(const std::string& name, const GraphStats& stats);

/// \brief Per-node degree vector as doubles (convenient for correlations).
std::vector<double> DegreesAsDoubles(const CsrGraph& graph);

}  // namespace d2pr

#endif  // D2PR_GRAPH_GRAPH_STATS_H_
