// Baseline node-significance measures the paper compares against or cites.
//
//  * Degree centrality — the trivial baseline D2PR is de-coupling from.
//  * Equal-opportunity PageRank (related work [2], Banky et al. 2013):
//    conventional transitions, teleportation proportional to deg^-1 to
//    boost low-degree nodes.
//  * Degree-biased walk (related work [11], Cooper et al. 2012): transition
//    probability proportional to destination degree, i.e. exactly D2PR with
//    p = -1; provided under its own name for clarity in benches.

#ifndef D2PR_CORE_BASELINES_H_
#define D2PR_CORE_BASELINES_H_

#include <vector>

#include "common/result.h"
#include "core/pagerank.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Degree centrality: deg(v) / Σ deg, as a score vector.
std::vector<double> DegreeCentralityScores(const CsrGraph& graph);

/// \brief Equal-opportunity PageRank: conventional transition matrix,
/// teleport ∝ deg(v)^gamma (gamma = -1 boosts low-degree nodes as in [2]).
Result<PagerankResult> EqualOpportunityPagerank(const CsrGraph& graph,
                                                double alpha = 0.85,
                                                double gamma = -1.0);

/// \brief Degree-biased random walk scores ([11]): D2PR with p = -1.
Result<PagerankResult> DegreeBiasedWalkScores(const CsrGraph& graph,
                                              double alpha = 0.85);

}  // namespace d2pr

#endif  // D2PR_CORE_BASELINES_H_
