#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace d2pr {

Summary Summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(values.size()));
  s.median = Quantile(values, 0.5);
  return s;
}

double Quantile(std::span<const double> values, double q) {
  D2PR_CHECK(q >= 0.0 && q <= 1.0);
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace d2pr
