// Graph serialization: whitespace edge-list text and a compact binary form.

#ifndef D2PR_GRAPH_GRAPH_IO_H_
#define D2PR_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Writes `graph` as an edge-list text file.
///
/// Format: a header comment, then one line per logical edge: "u v" or
/// "u v w" for weighted graphs. Undirected edges are emitted once with
/// u <= v. Lines starting with '#' are comments.
Status WriteEdgeListText(const CsrGraph& graph, const std::string& path);

/// \brief Reads an edge-list text file written by WriteEdgeListText (or any
/// whitespace-separated "u v [w]" file).
///
/// \param num_nodes Node-id space; pass -1 to infer max id + 1.
Result<CsrGraph> ReadEdgeListText(const std::string& path, GraphKind kind,
                                  bool weighted, NodeId num_nodes = -1);

/// \brief Writes `graph` in the native binary format (magic + version +
/// CSR arrays). Fast, exact round-trip including weights.
Status WriteBinary(const CsrGraph& graph, const std::string& path);

/// \brief Reads a graph in the native binary format.
Result<CsrGraph> ReadBinary(const std::string& path);

}  // namespace d2pr

#endif  // D2PR_GRAPH_GRAPH_IO_H_
