// Golden-file pin of the transition store's on-disk format.
//
// tests/testdata/golden_transition_v1.d2ptm is a version-1 store file for
// a small, fully deterministic weighted graph, committed to the repo.
// Today's reader must keep loading it byte-exactly: if this test fails,
// the format changed in a way that breaks every store already on disk —
// bump TransitionStore::kFormatVersion (and decide the migration story)
// instead of silently invalidating old stores.
//
// Regenerate the fixture (only when *introducing* a new format version,
// alongside a new golden file — never to paper over a red run):
//   D2PR_REGENERATE_GOLDEN=1 ./d2pr_tests --gtest_filter='PersistGolden*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "api/transition_store.h"
#include "graph/graph_builder.h"
#include "graph/graph_fingerprint.h"

namespace d2pr {
namespace {

#ifndef D2PR_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define D2PR_TEST_DATA_DIR"
#endif

constexpr char kGoldenFixture[] = "/golden_transition_v1.d2ptm";

// The fixture graph, rebuilt from literals so the golden bytes depend on
// nothing but the format and the transition math.
CsrGraph GoldenGraph() {
  GraphBuilder builder(5, GraphKind::kDirected, /*weighted=*/true);
  EXPECT_TRUE(builder.AddEdge(0, 1, 2.0).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 3.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, 5.0).ok());
  EXPECT_TRUE(builder.AddEdge(3, 0, 0.5).ok());
  auto graph = builder.Build();  // node 4 stays dangling
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

constexpr TransitionKey kGoldenKey{0.75, 0.25, DegreeMetric::kOutStrength};

TEST(PersistGoldenTest, VersionOneFixtureLoadsByteExactly) {
  const CsrGraph graph = GoldenGraph();
  const uint64_t fingerprint = GraphFingerprint(graph);
  const std::string fixture_path =
      std::string(D2PR_TEST_DATA_DIR) + kGoldenFixture;

  if (std::getenv("D2PR_REGENERATE_GOLDEN") != nullptr) {
    TransitionStore writer(D2PR_TEST_DATA_DIR);
    auto built = TransitionMatrix::Build(graph, {.p = kGoldenKey.p,
                                                 .beta = kGoldenKey.beta,
                                                 .metric = kGoldenKey.metric});
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(writer.Save(fingerprint, kGoldenKey, *built).ok());
    std::filesystem::rename(writer.PathFor(fingerprint, kGoldenKey),
                            fixture_path);
    GTEST_SKIP() << "regenerated " << fixture_path;
  }

  ASSERT_TRUE(std::filesystem::exists(fixture_path))
      << fixture_path
      << " missing; see the regeneration note in this file";

  // Stage the committed fixture into a store directory under the name
  // FileNameFor computes today — which also pins the name scheme: if the
  // scheme changes, existing stores stop resolving and this fails.
  const std::string store_dir = testing::TempDir() + "/d2pr_golden_store";
  std::filesystem::remove_all(store_dir);
  std::filesystem::create_directories(store_dir);
  TransitionStore store(store_dir);
  std::filesystem::copy_file(fixture_path,
                             store.PathFor(fingerprint, kGoldenKey));

  auto loaded = store.Load(fingerprint, kGoldenKey, graph.num_nodes(),
                           graph.num_arcs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString()
                           << "\nThe version-1 format no longer loads. Bump "
                              "TransitionStore::kFormatVersion instead of "
                              "changing the v1 layout.";

  auto built = TransitionMatrix::Build(graph, {.p = kGoldenKey.p,
                                               .beta = kGoldenKey.beta,
                                               .metric = kGoldenKey.metric});
  ASSERT_TRUE(built.ok());
  ASSERT_EQ((*loaded)->num_nodes(), built->num_nodes());
  ASSERT_EQ((*loaded)->probs().size(), built->probs().size());
  EXPECT_EQ(std::memcmp((*loaded)->probs().data(), built->probs().data(),
                        built->probs().size_bytes()),
            0)
      << "stored probabilities diverge from today's transition math";
  for (NodeId v = 0; v < built->num_nodes(); ++v) {
    EXPECT_EQ((*loaded)->IsDangling(v), built->IsDangling(v));
  }
}

}  // namespace
}  // namespace d2pr
