#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(GraphBuilderTest, RejectsOutOfRangeNodes) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  EXPECT_EQ(builder.AddEdge(0, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(-1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.AddEdge(5, 7).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(builder.num_added(), 0);
}

TEST(GraphBuilderTest, RejectsWeightsOnUnweightedBuilder) {
  GraphBuilder builder(3, GraphKind::kUndirected, /*weighted=*/false);
  EXPECT_FALSE(builder.AddEdge(0, 1, 2.0).ok());
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
}

TEST(GraphBuilderTest, RejectsNonPositiveWeights) {
  GraphBuilder builder(3, GraphKind::kDirected, /*weighted=*/true);
  EXPECT_FALSE(builder.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(builder.AddEdge(0, 1, -2.0).ok());
  EXPECT_TRUE(builder.AddEdge(0, 1, 0.25).ok());
}

TEST(GraphBuilderTest, DuplicateSumMergesWeights) {
  GraphBuilder builder(2, GraphKind::kDirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.5).ok());
  auto graph = builder.Build(DuplicatePolicy::kSum);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_arcs(), 1);
  EXPECT_DOUBLE_EQ(graph->ArcWeight(0, 1), 4.0);
}

TEST(GraphBuilderTest, DuplicateKeepFirst) {
  GraphBuilder builder(2, GraphKind::kDirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.5).ok());
  auto graph = builder.Build(DuplicatePolicy::kKeepFirst);
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(graph->ArcWeight(0, 1), 1.5);
}

TEST(GraphBuilderTest, DuplicateErrorFailsBuild) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build(DuplicatePolicy::kError);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, UndirectedAddsBothArcs) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_EQ(builder.num_added(), 2);  // both directions staged
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->HasArc(0, 2));
  EXPECT_TRUE(graph->HasArc(2, 0));
}

TEST(GraphBuilderTest, UndirectedReciprocalAddsMerge) {
  // Adding (u, v) and (v, u) on an undirected builder is the same edge.
  GraphBuilder builder(3, GraphKind::kUndirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0, 3.0).ok());
  auto graph = builder.Build(DuplicatePolicy::kSum);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1);
  EXPECT_DOUBLE_EQ(graph->ArcWeight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(graph->ArcWeight(1, 0), 4.0);
}

TEST(GraphBuilderTest, EmptyBuildProducesIsolatedNodes) {
  GraphBuilder builder(5, GraphKind::kDirected);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 5);
  EXPECT_EQ(graph->num_arcs(), 0);
  EXPECT_EQ(graph->CountDangling(), 5);
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto first = builder.Build();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->num_arcs(), 1);
  // Builder was drained; a fresh build is empty.
  auto second = builder.Build();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->num_arcs(), 0);
}

TEST(GraphBuilderTest, RowsComeOutSortedRegardlessOfInsertOrder) {
  GraphBuilder builder(6, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto nbrs = graph->OutNeighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilderTest, LargeStarGraph) {
  constexpr NodeId kLeaves = 5000;
  GraphBuilder builder(kLeaves + 1, GraphKind::kUndirected);
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) {
    ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->OutDegree(0), kLeaves);
  EXPECT_EQ(graph->num_edges(), kLeaves);
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) {
    EXPECT_EQ(graph->OutDegree(leaf), 1);
  }
}

}  // namespace
}  // namespace d2pr
