// Distributed block-solve benchmark: the same power iteration run three
// ways per shard count — the in-process partitioned solver
// (SolvePagerankPartitioned, the bit-parity reference), the distributed
// coordinator over in-process channels (wire codec cost, no sockets),
// and the distributed coordinator over a real loopback shard fleet
// (ShardServer per shard, SocketShardChannel per connection). Prints one
// markdown row per configuration — solve wall time, sweeps, and the
// per-sweep boundary/owned exchange volume — and asserts bitwise parity
// against the reference on every distributed run. Numbers are recorded
// in results/dist_bench.md.
//
// Not a Google Benchmark microbenchmark: the measured unit is a whole
// multi-process-shaped solve (real sockets, real threads on the loopback
// rows), so a plain steady_clock around Solve() is the harness. The
// binary defines its own main and is runnable standalone:
//
//   ./bench/perf_dist [--nodes=N] [--edges-per-node=N] [--repeats=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "core/block_solver.h"
#include "core/transition_slices.h"
#include "datagen/classic_generators.h"
#include "dist/channel.h"
#include "dist/coordinator.h"
#include "dist/shard_server.h"
#include "dist/shard_worker.h"
#include "graph/graph_fingerprint.h"
#include "graph/partition.h"
#include "graph/shard_cut.h"

namespace d2pr {
namespace {

struct SweepConfig {
  NodeId nodes = 50000;
  int32_t edges_per_node = 8;
  int repeats = 3;
};

CsrGraph MakeGraph(const SweepConfig& sweep) {
  Rng rng(42);
  auto graph = BarabasiAlbert(sweep.nodes, sweep.edges_per_node, &rng);
  D2PR_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

PagerankOptions SolveOptions() {
  PagerankOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-10;
  options.max_iterations = 200;
  return options;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PrintRow(const std::string& backend, size_t shards, double best_ms,
              int iterations, int64_t boundary_values, int64_t owned_values) {
  std::printf("| %-24s | %6zu | %9.1f | %10d | %14lld | %11lld |\n",
              backend.c_str(), shards, best_ms, iterations,
              static_cast<long long>(boundary_values),
              static_cast<long long>(owned_values));
  std::fflush(stdout);
}

void CheckBitwise(const PagerankResult& got, const PagerankResult& want) {
  D2PR_CHECK_EQ(got.iterations, want.iterations);
  D2PR_CHECK(got.residual == want.residual);
  D2PR_CHECK_EQ(got.scores.size(), want.scores.size());
  D2PR_CHECK(std::memcmp(got.scores.data(), want.scores.data(),
                         got.scores.size() * sizeof(double)) == 0);
}

/// The in-process reference: one SolvePagerankPartitioned per repeat.
PagerankResult RunReference(const CsrGraph& graph, size_t shards,
                            const std::vector<double>& teleport, int repeats,
                            double* best_ms,
                            PartitionScheme scheme = PartitionScheme::kRange) {
  PartitionOptions popts;
  popts.scheme = scheme;
  popts.num_shards = shards;
  popts.build_out_csr = false;
  Result<GraphPartition> partition = GraphPartition::Build(graph, popts);
  D2PR_CHECK(partition.ok()) << partition.status().ToString();
  auto slices = BuildTransitionSlicesLocal(graph, *partition, {});
  D2PR_CHECK(slices.ok()) << slices.status().ToString();

  Result<PagerankResult> result = Status::Internal("unset");
  *best_ms = 1e18;
  for (int r = 0; r < repeats; ++r) {
    const int64_t t0 = NowUs();
    result = SolvePagerankPartitioned(*slices, *partition, teleport,
                                      SolveOptions());
    D2PR_CHECK(result.ok()) << result.status().ToString();
    *best_ms = std::min(*best_ms, (NowUs() - t0) / 1000.0);
  }
  return std::move(result).value();
}

struct Fleet {
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::unique_ptr<ShardServer>> servers;      // loopback only
  std::vector<std::unique_ptr<ShardChannel>> channels;
  std::vector<ShardChannel*> raw;
};

Fleet MakeFleet(const CsrGraph& graph, size_t shards, bool loopback) {
  Fleet fleet;
  for (size_t s = 0; s < shards; ++s) {
    ShardWorkerOptions worker_options;
    worker_options.shard_id = s;
    worker_options.num_shards = shards;
    auto worker = ShardWorker::Create(graph, worker_options);
    D2PR_CHECK(worker.ok()) << worker.status().ToString();
    fleet.workers.push_back(std::move(*worker));
    if (loopback) {
      fleet.servers.push_back(
          std::make_unique<ShardServer>(*fleet.workers.back()));
      D2PR_CHECK(fleet.servers.back()->Start().ok());
      auto channel = SocketShardChannel::Connect(
          "127.0.0.1", fleet.servers.back()->port());
      D2PR_CHECK(channel.ok()) << channel.status().ToString();
      fleet.channels.push_back(std::move(*channel));
    } else {
      fleet.channels.push_back(
          std::make_unique<InProcessShardChannel>(*fleet.workers.back()));
    }
    fleet.raw.push_back(fleet.channels.back().get());
  }
  return fleet;
}

void RunDistributed(const CsrGraph& graph, size_t shards, bool loopback,
                    const std::vector<double>& teleport,
                    const PagerankResult& reference, int repeats) {
  Fleet fleet = MakeFleet(graph, shards, loopback);

  CoordinatorOptions options;
  options.num_nodes = graph.num_nodes();
  options.graph_fingerprint = GraphFingerprint(graph);
  options.key = ResolveTransitionKey(graph, {});
  DistributedCoordinator coordinator(fleet.raw, options);
  D2PR_CHECK(coordinator.Handshake().ok());

  double best_ms = 1e18;
  Result<PagerankResult> result = Status::Internal("unset");
  for (int r = 0; r < repeats; ++r) {
    const int64_t t0 = NowUs();
    result = coordinator.Solve(SolverMethod::kPower, teleport, SolveOptions());
    D2PR_CHECK(result.ok()) << result.status().ToString();
    best_ms = std::min(best_ms, (NowUs() - t0) / 1000.0);
  }
  CheckBitwise(*result, reference);

  const CoordinatorStats& stats = coordinator.stats();
  PrintRow(loopback ? "coordinator (loopback)" : "coordinator (in-proc)",
           shards, best_ms, result->iterations, stats.boundary_values,
           stats.owned_values);
  for (auto& server : fleet.servers) server->Stop();
}

/// One row of the pre-cut memory story (printed as a second table).
struct CutMemoryRow {
  size_t shards = 0;
  int64_t cut_file_bytes = 0;    // all shard files on disk, summed
  int64_t max_build_input = 0;   // largest per-worker load input
  int64_t max_resident = 0;      // largest per-worker graph bytes, post-solve
};

/// The pre-cut fleet: `d2pr_partition_cut`-shaped shard files written
/// once, each worker loading ONLY its own cut; the coordinator ships the
/// global metric vector in the first solve begin. Uses the hash scheme —
/// on a Barabási–Albert graph the range scheme concentrates the early
/// hubs in shard 0, which is the skew story, not the memory story.
CutMemoryRow RunCutFleet(const CsrGraph& graph, size_t shards,
                         const std::vector<double>& teleport, int repeats) {
  namespace fs = std::filesystem;
  constexpr PartitionScheme kScheme = PartitionScheme::kHash;
  const fs::path dir = fs::temp_directory_path() / "d2pr_perf_dist_cuts";
  fs::create_directories(dir);

  double reference_ms = 0.0;
  const PagerankResult reference =
      RunReference(graph, shards, teleport, repeats, &reference_ms, kScheme);

  PartitionOptions popts;
  popts.scheme = kScheme;
  popts.num_shards = shards;
  popts.build_out_csr = true;
  auto partition = GraphPartition::Build(graph, popts);
  D2PR_CHECK(partition.ok()) << partition.status().ToString();

  const uint64_t fingerprint = GraphFingerprint(graph);
  CutMemoryRow row;
  row.shards = shards;
  Fleet fleet;
  for (size_t s = 0; s < shards; ++s) {
    const std::string path =
        (dir / ShardCutFileName(fingerprint, kScheme, shards, s)).string();
    const Status saved = SaveShardCut(graph, *partition, s, path);
    D2PR_CHECK(saved.ok()) << saved.ToString();
    row.cut_file_bytes += static_cast<int64_t>(fs::file_size(path));
    auto worker = ShardWorker::CreateFromCutFile(path, {});
    D2PR_CHECK(worker.ok()) << worker.status().ToString();
    row.max_build_input =
        std::max(row.max_build_input, worker->get()->build_input_bytes());
    fleet.workers.push_back(std::move(*worker));
    fleet.channels.push_back(
        std::make_unique<InProcessShardChannel>(*fleet.workers.back()));
    fleet.raw.push_back(fleet.channels.back().get());
  }

  CoordinatorOptions options;
  options.scheme = kScheme;
  options.num_nodes = graph.num_nodes();
  options.graph_fingerprint = fingerprint;
  options.key = ResolveTransitionKey(graph, {});
  options.metric_values = MetricValues(graph, options.key.metric);
  DistributedCoordinator coordinator(fleet.raw, options);
  D2PR_CHECK(coordinator.Handshake().ok());

  double best_ms = 1e18;
  Result<PagerankResult> result = Status::Internal("unset");
  for (int r = 0; r < repeats; ++r) {
    const int64_t t0 = NowUs();
    result = coordinator.Solve(SolverMethod::kPower, teleport, SolveOptions());
    D2PR_CHECK(result.ok()) << result.status().ToString();
    best_ms = std::min(best_ms, (NowUs() - t0) / 1000.0);
  }
  CheckBitwise(*result, reference);

  // Resident bytes are meaningful AFTER the first solve: the loaded cut
  // (ghost rows, weights) is dropped once the slice is built, leaving
  // only the in-CSR each sweep actually reads.
  for (const auto& worker : fleet.workers) {
    row.max_resident = std::max(row.max_resident, worker->resident_graph_bytes());
  }

  const CoordinatorStats& stats = coordinator.stats();
  PrintRow("cut-file fleet (in-proc)", shards, best_ms, result->iterations,
           stats.boundary_values, stats.owned_values);
  return row;
}

int Run(const Flags& flags) {
  SweepConfig sweep;
  sweep.nodes = static_cast<NodeId>(*flags.GetInt("nodes", 50000));
  sweep.edges_per_node =
      static_cast<int32_t>(*flags.GetInt("edges-per-node", 8));
  sweep.repeats = static_cast<int>(*flags.GetInt("repeats", 3));

  const CsrGraph graph = MakeGraph(sweep);
  const std::vector<double> teleport(
      static_cast<size_t>(graph.num_nodes()),
      1.0 / static_cast<double>(graph.num_nodes()));
  std::printf(
      "graph: %d nodes, %lld arcs; power, alpha=0.85, tol=1e-10, best of "
      "%d solves; exchange volumes are cumulative doubles over all "
      "repeats\n\n",
      graph.num_nodes(), static_cast<long long>(graph.num_arcs()),
      sweep.repeats);
  std::printf(
      "| backend                  | shards | solve_ms | iterations | "
      "boundary_down |    owned_up |\n"
      "|--------------------------|-------:|---------:|-----------:|"
      "--------------:|------------:|\n");

  std::vector<CutMemoryRow> memory_rows;
  for (size_t shards : {1, 2, 4}) {
    double reference_ms = 0.0;
    const PagerankResult reference = RunReference(
        graph, shards, teleport, sweep.repeats, &reference_ms);
    PrintRow("in-process block solve", shards, reference_ms,
             reference.iterations, 0, 0);
    RunDistributed(graph, shards, /*loopback=*/false, teleport, reference,
                   sweep.repeats);
    RunDistributed(graph, shards, /*loopback=*/true, teleport, reference,
                   sweep.repeats);
    memory_rows.push_back(
        RunCutFleet(graph, shards, teleport, sweep.repeats));
  }

  // The memory story: what one pre-cut worker holds vs a worker handed
  // the whole graph. `whole_graph_input` is the bytes a Create() worker
  // ingests (and keeps resident) regardless of shard count.
  ShardWorkerOptions whole_options;
  auto whole = ShardWorker::Create(graph, whole_options);
  D2PR_CHECK(whole.ok()) << whole.status().ToString();
  std::printf(
      "\npre-cut fleet memory (hash scheme; resident measured after the "
      "first solve, when the loaded cut has been dropped):\n\n"
      "| shards | cut_files_bytes | max_worker_input | "
      "max_worker_resident | whole_graph_input |\n"
      "|-------:|----------------:|-----------------:|"
      "--------------------:|------------------:|\n");
  for (const CutMemoryRow& row : memory_rows) {
    std::printf("| %6zu | %15lld | %16lld | %19lld | %17lld |\n", row.shards,
                static_cast<long long>(row.cut_file_bytes),
                static_cast<long long>(row.max_build_input),
                static_cast<long long>(row.max_resident),
                static_cast<long long>((*whole)->build_input_bytes()));
  }
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  return d2pr::Run(flags.value());
}
