// ThreadPool behavior: every submitted task runs, work executes on
// worker threads (not the caller), and shutdown drains the backlog.

#include "serve/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <mutex>
#include <set>
#include <thread>

namespace d2pr {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destruction waits for every task
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::latch done(1);
  std::atomic<bool> ran{false};
  pool.Submit([&] {
    ran = true;
    done.count_down();
  });
  done.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunOffTheCallingThread) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> worker_ids;
  std::latch done(64);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_ids.insert(std::this_thread::get_id());
      }
      done.count_down();
    });
  }
  done.wait();
  EXPECT_FALSE(worker_ids.contains(std::this_thread::get_id()));
  EXPECT_GE(worker_ids.size(), 1u);
  EXPECT_LE(worker_ids.size(), 2u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedBacklog) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    // Park the lone worker so the remaining submissions pile up in the
    // queue, then destroy the pool: the backlog must still run.
    pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      count.fetch_add(1);
    });
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 21);
}

}  // namespace
}  // namespace d2pr
