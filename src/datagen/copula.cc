#include "datagen/copula.h"

#include <cmath>
#include <numbers>

#include "common/string_util.h"
#include "datagen/distributions.h"
#include "stats/ranking.h"

namespace d2pr {

Result<std::vector<double>> SpearmanCoupledVector(
    std::span<const double> reference, double target_spearman, Rng* rng) {
  if (std::abs(target_spearman) > 1.0) {
    return Status::InvalidArgument(
        StrCat("target Spearman must lie in [-1, 1], got ", target_spearman));
  }
  const size_t n = reference.size();
  if (n < 2) {
    return Status::InvalidArgument("need at least 2 elements");
  }
  // Normal scores of the reference ranks: Φ⁻¹(rank / (n+1)).
  const std::vector<double> ranks =
      AverageRanks(reference, RankOrder::kAscending);
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    z[i] = NormalQuantile(ranks[i] / (static_cast<double>(n) + 1.0));
  }
  const double rho =
      2.0 * std::sin(std::numbers::pi * target_spearman / 6.0);
  const double noise_scale = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  std::vector<double> coupled(n);
  for (size_t i = 0; i < n; ++i) {
    coupled[i] = rho * z[i] + noise_scale * rng->Normal();
  }
  return coupled;
}

}  // namespace d2pr
